// Tests for the discrete-event execution engine (sim/engine) using
// uniform costs, where the classic pipeline formulas are exact.
#include "sim/engine.h"

#include <gtest/gtest.h>

#include "sched/baselines.h"
#include "sched/generator.h"
#include "sim/cost_model.h"

namespace mepipe::sim {
namespace {

using sched::OpKind;

TEST(Engine, GPipeMakespanMatchesFormula) {
  const int p = 4;
  const int n = 6;
  const auto schedule = sched::GPipeSchedule(p, n);
  const UniformCostModel costs(/*f=*/1.0, /*b=*/2.0, /*w=*/0.0, /*transfer=*/0.0);
  const SimResult result = Simulate(schedule, costs);
  // (n + p - 1) forward slots + (n + p - 1) backward slots.
  EXPECT_DOUBLE_EQ(result.makespan, (n + p - 1) * 3.0);
  EXPECT_NEAR(result.bubble_ratio, static_cast<double>(p - 1) / (n + p - 1), 1e-12);
}

TEST(Engine, OneFOneBMakespanMatchesFormula) {
  const int p = 4;
  const int n = 8;
  const auto schedule = sched::OneFOneBSchedule(p, n);
  const UniformCostModel costs(1.0, 2.0, 0.0, 0.0);
  const SimResult result = Simulate(schedule, costs);
  EXPECT_DOUBLE_EQ(result.makespan, (n + p - 1) * 3.0);
  EXPECT_NEAR(result.bubble_ratio, static_cast<double>(p - 1) / (n + p - 1), 1e-12);
}

TEST(Engine, OneFOneBPeakMemoryIsWarmupDepth) {
  const int p = 4;
  const int n = 8;
  const auto schedule = sched::OneFOneBSchedule(p, n);
  const UniformCostModel costs(1.0, 2.0, 0.0, 0.0, /*act_bytes=*/10);
  const SimResult result = Simulate(schedule, costs);
  // Stage i retains p - i forwards at peak.
  for (int stage = 0; stage < p; ++stage) {
    EXPECT_EQ(result.stages[static_cast<std::size_t>(stage)].peak_activation,
              10 * (p - stage))
        << "stage " << stage;
  }
  EXPECT_EQ(result.peak_activation, 10 * p);
}

TEST(Engine, GPipePeakMemoryRetainsAllMicros) {
  const int p = 3;
  const int n = 5;
  const auto schedule = sched::GPipeSchedule(p, n);
  const UniformCostModel costs(1.0, 2.0, 0.0, 0.0, /*act_bytes=*/7);
  const SimResult result = Simulate(schedule, costs);
  EXPECT_EQ(result.peak_activation, 7 * n);
}

TEST(Engine, TransfersDelayDownstreamStages) {
  const auto schedule = sched::GPipeSchedule(2, 1);
  const UniformCostModel with_transfer(1.0, 2.0, 0.0, /*transfer=*/0.5);
  const UniformCostModel without_transfer(1.0, 2.0, 0.0, 0.0);
  const Seconds slow = Simulate(schedule, with_transfer).makespan;
  const Seconds fast = Simulate(schedule, without_transfer).makespan;
  // One forward transfer + one backward transfer on the critical path.
  EXPECT_DOUBLE_EQ(slow, fast + 1.0);
}

TEST(Engine, TimelineCoversEveryComputeOp) {
  const auto schedule = sched::OneFOneBSchedule(3, 4);
  const UniformCostModel costs(1.0, 2.0, 0.0, 0.1);
  const SimResult result = Simulate(schedule, costs);
  int compute_spans = 0;
  for (const OpSpan& span : result.timeline) {
    if (!span.is_transfer) {
      ++compute_spans;
      EXPECT_LT(span.start, span.end);
    }
  }
  EXPECT_EQ(compute_spans, 3 * 4 * 2);
}

// --- split backward / weight-gradient handling ------------------------------

TEST(Engine, DeferredWgradAllExecuted) {
  const auto schedule = sched::Zb1pSchedule(4, 6);
  const UniformCostModel costs(1.0, 1.0, 1.0, 0.0);
  EngineOptions options;
  options.wgrad_mode = WgradMode::kFillWhole;
  const SimResult result = Simulate(schedule, costs, options);
  int w_spans = 0;
  for (const OpSpan& span : result.timeline) {
    if (!span.is_transfer && span.op.kind == OpKind::kWeightGrad) {
      ++w_spans;
    }
  }
  EXPECT_EQ(w_spans, 4 * 6);  // one whole-W per (stage, micro)
}

TEST(Engine, FineGrainedSplitsIntoGemms) {
  const auto schedule = sched::Zb1pSchedule(2, 3);
  const UniformCostModel costs(1.0, 1.0, 1.0, 0.0, 1, 0, /*wgrad_gemms=*/5);
  EngineOptions options;
  options.wgrad_mode = WgradMode::kFillGemms;
  const SimResult result = Simulate(schedule, costs, options);
  int gemm_spans = 0;
  for (const OpSpan& span : result.timeline) {
    if (!span.is_transfer && span.op.kind == OpKind::kWeightGradGemm) {
      ++gemm_spans;
    }
  }
  EXPECT_EQ(gemm_spans, 2 * 3 * 5);
}

TEST(Engine, ZeroBubbleBeatsImmediateWgradOnTail) {
  // With W deferred into bubbles, the iteration must not be slower than
  // executing W inline right after each B.
  const auto schedule = sched::Zb1pSchedule(4, 8);
  const UniformCostModel costs(1.0, 1.0, 1.0, 0.05);
  EngineOptions fill;
  fill.wgrad_mode = WgradMode::kFillWhole;
  EngineOptions immediate;
  immediate.wgrad_mode = WgradMode::kImmediate;
  const Seconds filled = Simulate(schedule, costs, fill).makespan;
  const Seconds inline_w = Simulate(schedule, costs, immediate).makespan;
  EXPECT_LE(filled, inline_w + 1e-9);
}

TEST(Engine, SplitBackwardRetainsActivationUntilW) {
  // Split schedules hold activations + act-grads between B and W, so the
  // peak must exceed the non-split equivalent.
  const int p = 2;
  const int n = 4;
  const auto split = sched::Zb1pSchedule(p, n);
  const auto fused = sched::OneFOneBSchedule(p, n);
  const UniformCostModel split_costs(1.0, 1.0, 1.0, 0.0, /*act=*/10, /*act_grad=*/4);
  const UniformCostModel fused_costs(1.0, 2.0, 0.0, 0.0, /*act=*/10);
  EngineOptions options;
  options.wgrad_mode = WgradMode::kFillWhole;
  const Bytes split_peak = Simulate(split, split_costs, options).peak_activation;
  const Bytes fused_peak = Simulate(fused, fused_costs).peak_activation;
  EXPECT_GT(split_peak, fused_peak);
}

TEST(Engine, MemoryReturnsToZero) {
  // Total allocated == total released across the iteration.
  const auto schedule = sched::Zb1pSchedule(3, 5);
  const UniformCostModel costs(1.0, 1.0, 1.0, 0.1, 8, 3, 4);
  EngineOptions options;
  options.wgrad_mode = WgradMode::kFillGemms;
  const SimResult result = Simulate(schedule, costs, options);
  // Indirect check: peak is positive and bounded by n * (act + grad) per stage.
  EXPECT_GT(result.peak_activation, 0);
  EXPECT_LE(result.peak_activation, 5 * (8 + 3));
}

TEST(Engine, BusyTimeAccountsAllWork) {
  const int p = 2;
  const int n = 3;
  const auto schedule = sched::OneFOneBSchedule(p, n);
  const UniformCostModel costs(1.0, 2.0, 0.0, 0.0);
  const SimResult result = Simulate(schedule, costs);
  for (const auto& stage : result.stages) {
    EXPECT_DOUBLE_EQ(stage.busy, n * 3.0);
  }
}

TEST(Engine, IdleBreakdownSumsToTheBubble) {
  // warmup + steady + drain idle must account for exactly the stage's
  // non-busy time, on fused and split schedules alike.
  const std::vector<sched::Schedule> schedules = {
      sched::OneFOneBSchedule(4, 6), sched::GPipeSchedule(3, 5), sched::Zb1pSchedule(3, 4)};
  for (const auto& schedule : schedules) {
    const UniformCostModel costs(1.0, schedule.problem.split_backward ? 1.0 : 2.0,
                                 schedule.problem.split_backward ? 1.0 : 0.0, 0.05, 8, 3);
    EngineOptions options;
    options.wgrad_mode = WgradMode::kFillWhole;
    const SimResult result = Simulate(schedule, costs, options);
    for (std::size_t i = 0; i < result.stages.size(); ++i) {
      const StageMetrics& m = result.stages[i];
      EXPECT_GE(m.warmup_idle, 0.0);
      EXPECT_GE(m.steady_idle, 0.0);
      EXPECT_GE(m.drain_idle, 0.0);
      EXPECT_NEAR(m.warmup_idle + m.steady_idle + m.drain_idle, result.makespan - m.busy, 1e-9)
          << schedule.method << " stage " << i;
    }
  }
}

TEST(Engine, OneFOneBWarmupGrowsDownThePipeline) {
  // Stage i cannot start before i forwards have relayed down, so the
  // warmup idle is strictly increasing in the stage index. The backward
  // chain drains the other way — the last backward lands on stage 0, so
  // drain idle *also* grows downstream and stage 0 has none.
  const auto schedule = sched::OneFOneBSchedule(4, 8);
  const UniformCostModel costs(1.0, 2.0, 0.0, 0.05);
  const SimResult result = Simulate(schedule, costs);
  for (std::size_t i = 0; i + 1 < result.stages.size(); ++i) {
    EXPECT_LT(result.stages[i].warmup_idle, result.stages[i + 1].warmup_idle) << i;
    EXPECT_LT(result.stages[i].drain_idle, result.stages[i + 1].drain_idle) << i;
  }
  EXPECT_DOUBLE_EQ(result.stages[0].warmup_idle, 0.0);
  EXPECT_DOUBLE_EQ(result.stages[0].drain_idle, 0.0);
}

TEST(Engine, StragglerShowsUpAsNeighborSteadyIdle) {
  // A persistent straggler starves the stages around it mid-pipeline:
  // their steady-state gaps grow while their own busy time stays clean.
  const auto schedule = sched::OneFOneBSchedule(4, 8);
  const UniformCostModel costs(1.0, 2.0, 0.0, 0.05);
  const SimResult clean = Simulate(schedule, costs);

  FaultPlan plan;
  plan.stragglers.push_back({2, 0.0, 1e9, 2.0});
  EngineOptions options;
  options.fault_plan = plan;
  const SimResult faulted = Simulate(schedule, costs, options);

  EXPECT_GT(faulted.stages[1].steady_idle, clean.stages[1].steady_idle);
  EXPECT_GT(faulted.stages[3].steady_idle, clean.stages[3].steady_idle);
  EXPECT_DOUBLE_EQ(faulted.stages[1].busy, clean.stages[1].busy);
}

}  // namespace
}  // namespace mepipe::sim
