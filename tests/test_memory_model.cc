// Tests for the §4.5 memory model / SVPP variant selection
// (core/memory_model).
#include "core/memory_model.h"

#include <gtest/gtest.h>

#include "hw/cluster.h"
#include "model/transformer.h"

namespace mepipe::core {
namespace {

struct Fixture {
  model::TransformerConfig config = model::Llama13B();
  hw::ClusterSpec cluster = hw::Rtx4090Cluster();

  VariantDecision Decide(int pp, int dp, int spp, int vp = 1) {
    Strategy strategy;
    strategy.method = Method::kSvpp;
    strategy.pp = pp;
    strategy.dp = dp;
    strategy.spp = spp;
    strategy.vp = vp;
    sched::PipelineProblem problem;
    problem.stages = pp;
    problem.virtual_chunks = vp;
    problem.slices = spp;
    problem.micros = 4;
    problem.split_backward = true;
    TrainingCostModel costs(config, strategy, cluster, problem);
    SvppOptions svpp;
    svpp.stages = pp;
    svpp.virtual_chunks = vp;
    svpp.slices = spp;
    svpp.micros = 4;
    return ChooseSvppVariant(costs, svpp, cluster.gpu);
  }
};

TEST(MemoryModel, MoreSlicesAffordMoreInflight) {
  Fixture fx;
  const VariantDecision s2 = fx.Decide(8, 8, 2);
  const VariantDecision s8 = fx.Decide(8, 8, 8);
  ASSERT_TRUE(s2.feasible);
  ASSERT_TRUE(s8.feasible);
  // Slicing shrinks the per-forward unit, so more forwards fit (until the
  // ceiling clamps).
  EXPECT_LT(s8.per_forward_bytes, s2.per_forward_bytes);
  EXPECT_GE(s8.f, s8.f > 0 ? MinInflight({8, 1, 8, 4}) : 0);
}

TEST(MemoryModel, UnslicedThirteenBIsMemoryStarved) {
  // §7.2: without slicing, 13B on a 24 GB card cannot reach the
  // lowest-bubble variant (this is why DAPPLE needs CP and MEPipe SPP).
  Fixture fx;
  const VariantDecision d = fx.Decide(8, 8, 1);
  SvppOptions svpp;
  svpp.stages = 8;
  svpp.slices = 1;
  if (d.feasible) {
    EXPECT_LT(d.f, Table3Inflight(svpp));
  }
}

TEST(MemoryModel, BudgetArithmetic) {
  Fixture fx;
  const VariantDecision d = fx.Decide(8, 8, 4);
  ASSERT_TRUE(d.feasible);
  EXPECT_EQ(d.activation_budget, fx.cluster.gpu.usable_memory() - d.static_bytes);
  EXPECT_GT(d.per_forward_bytes, 0);
  // f never exceeds what the budget can hold.
  EXPECT_LE(static_cast<Bytes>(d.f) * d.per_forward_bytes, d.activation_budget);
}

TEST(MemoryModel, InfeasibleWhenStaticAloneOverflows) {
  // pp=2 leaves half of 13B's parameters on one stage: static alone
  // exceeds 24 GB.
  Fixture fx;
  const VariantDecision d = fx.Decide(2, 32, 4);
  EXPECT_FALSE(d.feasible);
  EXPECT_FALSE(d.reason.empty());
}

TEST(MemoryModel, CeilingClampsOnBigGpus) {
  // On an 80 GB A100 the budget is huge; f clamps at the ceiling.
  Fixture fx;
  fx.cluster = hw::A100Cluster();
  const VariantDecision d = fx.Decide(8, 4, 4);
  ASSERT_TRUE(d.feasible);
  SvppOptions svpp;
  svpp.stages = 8;
  svpp.slices = 4;
  EXPECT_EQ(d.f, MaxUsefulInflight(svpp));
}

}  // namespace
}  // namespace mepipe::core
