// Tests for the resilience training-run simulator (core/resilience):
// accounting identities, determinism, and the cross-validation of the
// measured failure-overhead fraction against the analytic closed form.
#include "core/resilience.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "sched/baselines.h"
#include "sim/cost_model.h"

namespace mepipe::core {
namespace {

TEST(Resilience, FailureFreeRunPaysOnlyCheckpoints) {
  ResilienceOptions options;
  options.reliability.mtbf_per_1000_gpus = 1e18;  // effectively no failures
  options.reliability.checkpoint_interval = 600.0;
  options.reliability.checkpoint_write_cost = 10.0;
  options.gpus = 1024;
  options.iterations = 100;
  const ResilienceMetrics m = SimulateTrainingRun(/*iteration_time=*/10.0, options);
  EXPECT_EQ(m.restarts, 0);
  EXPECT_DOUBLE_EQ(m.useful_time, 1000.0);
  EXPECT_EQ(m.iterations_completed, 100);
  // 1000s of progress crosses the 600s checkpoint interval once.
  EXPECT_EQ(m.checkpoints_written, 1);
  EXPECT_DOUBLE_EQ(m.wall_time, 1010.0);
  EXPECT_NEAR(m.overhead_fraction, 10.0 / 1010.0, 1e-12);
}

TEST(Resilience, WallClockAccountingIdentity) {
  ResilienceOptions options;
  options.gpus = 4096;
  options.target_useful_time = 200'000.0;
  options.seed = 7;
  const ResilienceMetrics m = SimulateTrainingRun(8.0, options);
  EXPECT_GT(m.restarts, 0);
  // Every wall second is progress, replayed loss, a checkpoint write, or
  // a recovery stall.
  EXPECT_NEAR(m.wall_time,
              m.useful_time + m.lost_time + m.checkpoint_time + m.recovery_time,
              1e-6 * m.wall_time);
  EXPECT_DOUBLE_EQ(m.useful_time, 200'000.0);
  EXPECT_GT(m.goodput, 0.0);
  EXPECT_LT(m.goodput, 1.0);
  EXPECT_NEAR(m.goodput + m.overhead_fraction, 1.0, 1e-12);
  // Failure records carry consistent data.
  ASSERT_FALSE(m.failures.empty());
  for (const FailureRecord& f : m.failures) {
    EXPECT_GE(f.lost_work, 0.0);
    EXPECT_LE(f.lost_work, options.reliability.checkpoint_interval + 1e-9);
    EXPECT_GE(f.iteration_offset, 0.0);
    EXPECT_LE(f.iteration_offset, 8.0);
  }
}

TEST(Resilience, DeterministicUnderSeed) {
  ResilienceOptions options;
  options.gpus = 4096;
  options.target_useful_time = 100'000.0;
  options.seed = 42;
  const ResilienceMetrics a = SimulateTrainingRun(10.0, options);
  const ResilienceMetrics b = SimulateTrainingRun(10.0, options);
  EXPECT_DOUBLE_EQ(a.wall_time, b.wall_time);
  EXPECT_DOUBLE_EQ(a.lost_time, b.lost_time);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.checkpoints_written, b.checkpoints_written);
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.failures[i].wall_time, b.failures[i].wall_time);
    EXPECT_DOUBLE_EQ(a.failures[i].lost_work, b.failures[i].lost_work);
  }

  options.seed = 43;
  const ResilienceMetrics c = SimulateTrainingRun(10.0, options);
  EXPECT_NE(a.wall_time, c.wall_time);
}

TEST(Resilience, MeasuredOverheadMatchesAnalyticClosedForm) {
  // The §9 cross-validation: the Monte-Carlo overhead must agree with
  // FailureOverheadFraction within 25% relative error at every fleet
  // size the paper's discussion covers.
  const ReliabilityOptions rel;  // paper defaults
  for (int gpus : {64, 256, 1024, 4096}) {
    const double analytic = FailureOverheadFraction(gpus, rel);
    ResilienceOptions options;
    options.reliability = rel;
    options.gpus = gpus;
    options.seed = 2025;
    // Enough simulated training for a few hundred expected failures.
    const Seconds mtbf = rel.mtbf_per_1000_gpus * 1000.0 / gpus;
    options.target_useful_time = 300.0 * mtbf;
    const ResilienceMetrics m = SimulateTrainingRun(/*iteration_time=*/10.0, options);
    EXPECT_GT(m.restarts, 150) << gpus << " GPUs";
    const double rel_error = std::abs(m.overhead_fraction - analytic) / analytic;
    EXPECT_LT(rel_error, 0.25) << gpus << " GPUs: measured " << m.overhead_fraction
                               << " vs analytic " << analytic;
  }
}

TEST(Resilience, EngineMeasuredIterationTime) {
  const auto schedule = sched::OneFOneBSchedule(4, 8);
  const sim::UniformCostModel costs(1.0, 2.0, 0.0, 0.0);
  ResilienceOptions options;
  options.reliability.mtbf_per_1000_gpus = 1e18;
  options.iterations = 10;
  const ResilienceMetrics m = SimulateTrainingRun(schedule, costs, options);
  // (n + p - 1) * (f + b) = 11 * 3.
  EXPECT_DOUBLE_EQ(m.iteration_time, 33.0);
  EXPECT_DOUBLE_EQ(m.useful_time, 330.0);
}

TEST(Resilience, FaultPlanForFailureScriptsTheFailStop) {
  const ReliabilityOptions rel;
  FailureRecord failure;
  failure.iteration = 12;
  failure.iteration_offset = 4.5;
  failure.stall = rel.recovery_time;
  const sim::FaultPlan plan = FaultPlanForFailure(failure, 10.0, rel);
  ASSERT_EQ(plan.fail_stops.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.fail_stops[0].time, 4.5);
  EXPECT_DOUBLE_EQ(plan.fail_stops[0].restart_time, rel.recovery_time);
  EXPECT_NO_THROW(plan.Validate(1));
}

TEST(Resilience, ExactIterationCountFaultFree) {
  // iterations_completed must count exactly even when the iteration time
  // is not representable in binary (0.1): the quotient of the float
  // accumulation is snapped to the integer it is epsilon-close to
  // instead of truncating to iterations - 1.
  ResilienceOptions options;
  options.reliability.mtbf_per_1000_gpus = 1e18;
  options.gpus = 1024;
  options.iterations = 12345;
  const ResilienceMetrics m = SimulateTrainingRun(/*iteration_time=*/0.1, options);
  EXPECT_EQ(m.restarts, 0);
  EXPECT_EQ(m.iterations_completed, options.iterations);
}

TEST(Resilience, FailuresStrikeDuringCheckpointWrites) {
  // Failure arrivals run on the wall clock, so a write lasting a sizable
  // fraction of the MTBF gets hit mid-stream: the elapsed write time is
  // paid but the checkpoint never becomes durable.
  ResilienceOptions options;
  options.gpus = 4096;
  options.seed = 11;
  options.reliability.checkpoint_write_cost = 2000.0;  // ~19% of the MTBF
  options.reliability.checkpoint_interval = 3000.0;
  const Seconds mtbf =
      options.reliability.mtbf_per_1000_gpus * 1000.0 / options.gpus;
  options.target_useful_time = 100.0 * mtbf;
  const ResilienceMetrics m = SimulateTrainingRun(10.0, options);
  EXPECT_GT(m.checkpoints_aborted, 0);
  EXPECT_GT(m.checkpoints_written, 0);
  // Aborted write time still lands in checkpoint_time, so the wall-clock
  // identity holds exactly.
  EXPECT_NEAR(m.wall_time,
              m.useful_time + m.lost_time + m.checkpoint_time + m.recovery_time,
              1e-6 * m.wall_time);
  // More write time was paid than the durable writes alone account for.
  EXPECT_GT(m.checkpoint_time,
            m.checkpoints_written * options.reliability.checkpoint_write_cost);
}

TEST(Resilience, FailuresDuringRecoveryRestartTheRecovery) {
  // With a recovery stall comparable to the MTBF, failures strike while
  // the cluster is still coming back up. Those failures lose no further
  // work (progress is already rolled back) but restart the recovery.
  ResilienceOptions options;
  options.gpus = 4096;
  options.seed = 3;
  options.reliability.recovery_time = 5000.0;  // ~47% of the 10546s MTBF
  const Seconds mtbf =
      options.reliability.mtbf_per_1000_gpus * 1000.0 / options.gpus;
  options.target_useful_time = 100.0 * mtbf;
  const ResilienceMetrics m = SimulateTrainingRun(10.0, options);
  int zero_loss = 0;
  for (const FailureRecord& f : m.failures) {
    if (f.lost_work == 0.0) {
      ++zero_loss;
    }
  }
  EXPECT_GT(zero_loss, 0);
  EXPECT_EQ(m.restarts, static_cast<int>(m.failures.size()));
  EXPECT_NEAR(m.wall_time,
              m.useful_time + m.lost_time + m.checkpoint_time + m.recovery_time,
              1e-6 * m.wall_time);
}

TEST(Resilience, CrossValidatesAnalyticAcrossGrid) {
  // Property check: across a (fleet × interval × write-cost) grid the
  // measured overhead tracks FailureOverheadFraction's closed form.
  for (int gpus : {256, 1024}) {
    for (Seconds interval : {300.0, 900.0}) {
      for (Seconds write_cost : {5.0, 20.0}) {
        ReliabilityOptions rel;
        rel.checkpoint_interval = interval;
        rel.checkpoint_write_cost = write_cost;
        ResilienceOptions options;
        options.reliability = rel;
        options.gpus = gpus;
        options.seed = 2025;
        const Seconds mtbf = rel.mtbf_per_1000_gpus * 1000.0 / gpus;
        options.target_useful_time = 150.0 * mtbf;
        const ResilienceMetrics m = SimulateTrainingRun(10.0, options);
        const double analytic = FailureOverheadFraction(gpus, rel);
        const double rel_error = std::abs(m.overhead_fraction - analytic) / analytic;
        EXPECT_LT(rel_error, 0.25)
            << gpus << " GPUs, interval " << interval << "s, write " << write_cost
            << "s: measured " << m.overhead_fraction << " vs analytic " << analytic;
      }
    }
  }
}

TEST(Resilience, ReplicaLocalRestartShrinksLostTime) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    for (int dp : {2, 8}) {
      ResilienceOptions options;
      options.gpus = 4096;
      options.seed = seed;
      options.dp_replicas = dp;
      const Seconds mtbf =
          options.reliability.mtbf_per_1000_gpus * 1000.0 / options.gpus;
      options.target_useful_time = 150.0 * mtbf;

      options.restart_scope = sim::RestartScope::kFullPipeline;
      const ResilienceMetrics full = SimulateTrainingRun(10.0, options);
      options.restart_scope = sim::RestartScope::kDpReplicaLocal;
      const ResilienceMetrics replica = SimulateTrainingRun(10.0, options);

      // Strictly less work replayed whenever a surviving peer exists.
      EXPECT_LT(replica.lost_time, full.lost_time) << "seed " << seed << " dp " << dp;
      EXPECT_GT(replica.goodput, full.goodput) << "seed " << seed << " dp " << dp;
      // Under replica scope at most the interrupted iteration replays.
      for (const FailureRecord& f : replica.failures) {
        EXPECT_LE(f.lost_work, 10.0 + 1e-9);
      }
      EXPECT_NEAR(replica.wall_time,
                  replica.useful_time + replica.lost_time + replica.checkpoint_time +
                      replica.recovery_time,
                  1e-6 * replica.wall_time);
    }
  }
}

TEST(Resilience, ReplicaScopeFallsBackToFullWithoutPeers) {
  // dp_replicas == 1 has no surviving replica to restore from; the two
  // scopes must produce byte-identical runs.
  ResilienceOptions options;
  options.gpus = 4096;
  options.seed = 5;
  options.dp_replicas = 1;
  options.target_useful_time = 500'000.0;
  options.restart_scope = sim::RestartScope::kFullPipeline;
  const ResilienceMetrics full = SimulateTrainingRun(10.0, options);
  options.restart_scope = sim::RestartScope::kDpReplicaLocal;
  const ResilienceMetrics replica = SimulateTrainingRun(10.0, options);
  EXPECT_DOUBLE_EQ(full.wall_time, replica.wall_time);
  EXPECT_DOUBLE_EQ(full.lost_time, replica.lost_time);
  EXPECT_EQ(full.restarts, replica.restarts);
}

TEST(Resilience, YoungDalyFormulas) {
  // mtbf = 1800s at 1000 GPUs, write cost 10s.
  ResilienceOptions base;
  base.gpus = 1000;
  base.reliability.mtbf_per_1000_gpus = 1800.0;
  base.reliability.checkpoint_write_cost = 10.0;
  base.target_useful_time = 100'000.0;
  const CheckpointIntervalSolution sol = OptimalCheckpointInterval(10.0, base);
  EXPECT_DOUBLE_EQ(sol.mtbf, 1800.0);
  EXPECT_DOUBLE_EQ(sol.young, std::sqrt(2.0 * 10.0 * 1800.0));
  // Daly's correction nudges upward by less than it subtracts w back.
  EXPECT_LT(sol.daly, sol.young);
  EXPECT_GT(sol.daly, sol.young - 10.0);
  EXPECT_GT(sol.refined, 0.0);
  EXPECT_GT(sol.goodput, 0.0);
  EXPECT_LT(sol.goodput, 1.0);

  // Degenerate regime w >= 2M: checkpoint every MTBF.
  ResilienceOptions heavy = base;
  heavy.reliability.checkpoint_write_cost = 5000.0;
  const CheckpointIntervalSolution boundary = OptimalCheckpointInterval(10.0, heavy);
  EXPECT_DOUBLE_EQ(boundary.daly, boundary.mtbf);
}

TEST(Resilience, RefinedIntervalBeatsTheClosedFormsInSimulation) {
  // The refinement maximizes *simulated* goodput, so it can never do
  // worse there than the closed-form candidates it brackets.
  ResilienceOptions base;
  base.gpus = 4096;
  base.seed = 2025;
  base.reliability.checkpoint_write_cost = 30.0;
  const Seconds mtbf =
      base.reliability.mtbf_per_1000_gpus * 1000.0 / base.gpus;
  base.target_useful_time = 150.0 * mtbf;
  const CheckpointIntervalSolution sol = OptimalCheckpointInterval(5.0, base);
  auto goodput_at = [&](Seconds interval) {
    ResilienceOptions run = base;
    run.reliability.checkpoint_interval = interval;
    return SimulateTrainingRun(5.0, run).goodput;
  };
  EXPECT_GE(sol.goodput, goodput_at(sol.young) - 1e-12);
  EXPECT_GE(sol.goodput, goodput_at(sol.daly) - 1e-12);

  // Acceptance bar: within 5% of a brute-force simulated optimum scan.
  double brute = 0;
  for (int i = 0; i < 21; ++i) {
    const Seconds interval =
        (sol.daly / 8.0) * std::pow(64.0, static_cast<double>(i) / 20.0);
    brute = std::max(brute, goodput_at(interval));
  }
  EXPECT_GE(sol.goodput, 0.95 * brute);
}

TEST(Resilience, SolverSurvivesUnsurvivableProbeIntervals) {
  // At 65536 GPUs the cluster MTBF is ~658s; probing a 10^6 s interval
  // can never complete a durable checkpoint. The solver must score such
  // probes as zero goodput, not abort the search.
  ResilienceOptions base;
  base.gpus = 65536;
  base.seed = 9;
  base.reliability.checkpoint_write_cost = 30.0;
  base.target_useful_time = 50'000.0;
  CheckpointIntervalOptions bounds;
  bounds.min_interval = 100.0;
  bounds.max_interval = 1e7;
  const CheckpointIntervalSolution sol =
      OptimalCheckpointInterval(5.0, base, bounds);
  EXPECT_GT(sol.goodput, 0.0);
  EXPECT_LT(sol.refined, 1e5);
}

TEST(Resilience, FaultPlanForFailureCarriesReplicaScope) {
  const ReliabilityOptions rel;
  FailureRecord failure;
  failure.iteration_offset = 2.0;
  const sim::FaultPlan plan = FaultPlanForFailure(
      failure, 10.0, rel, sim::RestartScope::kDpReplicaLocal);
  EXPECT_EQ(plan.restart_scope, sim::RestartScope::kDpReplicaLocal);
  ASSERT_EQ(plan.sync_points.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.sync_points[0], 0.0);
  EXPECT_NO_THROW(plan.Validate(1));
}

TEST(Resilience, RejectsDegenerateInputs) {
  EXPECT_THROW(SimulateTrainingRun(0.0, {}), CheckError);
  ResilienceOptions bad_gpus;
  bad_gpus.gpus = 0;
  EXPECT_THROW(SimulateTrainingRun(1.0, bad_gpus), CheckError);
  // An MTBF far below the checkpoint interval can never make durable
  // progress; the runner must diagnose this instead of hanging.
  ResilienceOptions doomed;
  doomed.gpus = 1000;
  doomed.reliability.mtbf_per_1000_gpus = 1.0;  // 1s MTBF, 600s interval
  doomed.target_useful_time = 10'000.0;
  EXPECT_THROW(SimulateTrainingRun(10.0, doomed), CheckError);
  // A free checkpoint has no optimal interval.
  ResilienceOptions free_ckpt;
  free_ckpt.reliability.checkpoint_write_cost = 0.0;
  EXPECT_THROW(OptimalCheckpointInterval(10.0, free_ckpt), CheckError);
}

TEST(Resilience, ValidateRejectsReplicaScopeWithoutReplicas) {
  // The contract: dp_replicas >= 1 always; kDpReplicaLocal with
  // dp_replicas < 1 is rejected up-front, not silently treated as the
  // dp==1 fallback.
  ResilienceOptions bad;
  bad.restart_scope = sim::RestartScope::kDpReplicaLocal;
  bad.dp_replicas = 0;
  EXPECT_THROW(bad.Validate(), CheckError);
  EXPECT_THROW(SimulateTrainingRun(10.0, bad), CheckError);
  // The interval solver must reject too — *before* its goodput scan,
  // whose CheckError-swallowing probes would otherwise turn the invalid
  // configuration into a silent all-zero-goodput search.
  EXPECT_THROW(OptimalCheckpointInterval(10.0, bad), CheckError);
  bad.dp_replicas = -3;
  EXPECT_THROW(SimulateTrainingRun(10.0, bad), CheckError);
  // Rejected under the full-pipeline scope as well: fewer replicas than
  // one is not a job regardless of how restarts are scoped.
  ResilienceOptions bad_full;
  bad_full.dp_replicas = 0;
  EXPECT_THROW(bad_full.Validate(), CheckError);
  EXPECT_THROW(SimulateTrainingRun(10.0, bad_full), CheckError);
}

TEST(Resilience, IntervalSolverHonorsTheReplicaFallbackContract) {
  // The dp_replicas == 1 fallback is part of the documented contract:
  // the solver must accept it (not reject, not diverge) and produce the
  // same solution as the full-pipeline scope, since the scopes are
  // behaviorally identical without a surviving peer.
  ResilienceOptions base;
  base.gpus = 4096;
  base.seed = 9;
  base.dp_replicas = 1;
  const Seconds mtbf = base.reliability.mtbf_per_1000_gpus * 1000.0 / base.gpus;
  base.target_useful_time = 40.0 * mtbf;
  CheckpointIntervalOptions effort;
  effort.coarse_points = 9;
  effort.golden_iterations = 8;

  base.restart_scope = sim::RestartScope::kFullPipeline;
  const CheckpointIntervalSolution full = OptimalCheckpointInterval(10.0, base, effort);
  base.restart_scope = sim::RestartScope::kDpReplicaLocal;
  const CheckpointIntervalSolution replica = OptimalCheckpointInterval(10.0, base, effort);
  EXPECT_DOUBLE_EQ(full.refined, replica.refined);
  EXPECT_DOUBLE_EQ(full.goodput, replica.goodput);
}

}  // namespace
}  // namespace mepipe::core
