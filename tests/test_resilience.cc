// Tests for the resilience training-run simulator (core/resilience):
// accounting identities, determinism, and the cross-validation of the
// measured failure-overhead fraction against the analytic closed form.
#include "core/resilience.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "sched/baselines.h"
#include "sim/cost_model.h"

namespace mepipe::core {
namespace {

TEST(Resilience, FailureFreeRunPaysOnlyCheckpoints) {
  ResilienceOptions options;
  options.reliability.mtbf_per_1000_gpus = 1e18;  // effectively no failures
  options.reliability.checkpoint_interval = 600.0;
  options.reliability.checkpoint_write_cost = 10.0;
  options.gpus = 1024;
  options.iterations = 100;
  const ResilienceMetrics m = SimulateTrainingRun(/*iteration_time=*/10.0, options);
  EXPECT_EQ(m.restarts, 0);
  EXPECT_DOUBLE_EQ(m.useful_time, 1000.0);
  EXPECT_EQ(m.iterations_completed, 100);
  // 1000s of progress crosses the 600s checkpoint interval once.
  EXPECT_EQ(m.checkpoints_written, 1);
  EXPECT_DOUBLE_EQ(m.wall_time, 1010.0);
  EXPECT_NEAR(m.overhead_fraction, 10.0 / 1010.0, 1e-12);
}

TEST(Resilience, WallClockAccountingIdentity) {
  ResilienceOptions options;
  options.gpus = 4096;
  options.target_useful_time = 200'000.0;
  options.seed = 7;
  const ResilienceMetrics m = SimulateTrainingRun(8.0, options);
  EXPECT_GT(m.restarts, 0);
  // Every wall second is progress, replayed loss, a checkpoint write, or
  // a recovery stall.
  EXPECT_NEAR(m.wall_time,
              m.useful_time + m.lost_time + m.checkpoint_time + m.recovery_time,
              1e-6 * m.wall_time);
  EXPECT_DOUBLE_EQ(m.useful_time, 200'000.0);
  EXPECT_GT(m.goodput, 0.0);
  EXPECT_LT(m.goodput, 1.0);
  EXPECT_NEAR(m.goodput + m.overhead_fraction, 1.0, 1e-12);
  // Failure records carry consistent data.
  ASSERT_FALSE(m.failures.empty());
  for (const FailureRecord& f : m.failures) {
    EXPECT_GE(f.lost_work, 0.0);
    EXPECT_LE(f.lost_work, options.reliability.checkpoint_interval + 1e-9);
    EXPECT_GE(f.iteration_offset, 0.0);
    EXPECT_LE(f.iteration_offset, 8.0);
  }
}

TEST(Resilience, DeterministicUnderSeed) {
  ResilienceOptions options;
  options.gpus = 4096;
  options.target_useful_time = 100'000.0;
  options.seed = 42;
  const ResilienceMetrics a = SimulateTrainingRun(10.0, options);
  const ResilienceMetrics b = SimulateTrainingRun(10.0, options);
  EXPECT_DOUBLE_EQ(a.wall_time, b.wall_time);
  EXPECT_DOUBLE_EQ(a.lost_time, b.lost_time);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.checkpoints_written, b.checkpoints_written);
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.failures[i].wall_time, b.failures[i].wall_time);
    EXPECT_DOUBLE_EQ(a.failures[i].lost_work, b.failures[i].lost_work);
  }

  options.seed = 43;
  const ResilienceMetrics c = SimulateTrainingRun(10.0, options);
  EXPECT_NE(a.wall_time, c.wall_time);
}

TEST(Resilience, MeasuredOverheadMatchesAnalyticClosedForm) {
  // The §9 cross-validation: the Monte-Carlo overhead must agree with
  // FailureOverheadFraction within 25% relative error at every fleet
  // size the paper's discussion covers.
  const ReliabilityOptions rel;  // paper defaults
  for (int gpus : {64, 256, 1024, 4096}) {
    const double analytic = FailureOverheadFraction(gpus, rel);
    ResilienceOptions options;
    options.reliability = rel;
    options.gpus = gpus;
    options.seed = 2025;
    // Enough simulated training for a few hundred expected failures.
    const Seconds mtbf = rel.mtbf_per_1000_gpus * 1000.0 / gpus;
    options.target_useful_time = 300.0 * mtbf;
    const ResilienceMetrics m = SimulateTrainingRun(/*iteration_time=*/10.0, options);
    EXPECT_GT(m.restarts, 150) << gpus << " GPUs";
    const double rel_error = std::abs(m.overhead_fraction - analytic) / analytic;
    EXPECT_LT(rel_error, 0.25) << gpus << " GPUs: measured " << m.overhead_fraction
                               << " vs analytic " << analytic;
  }
}

TEST(Resilience, EngineMeasuredIterationTime) {
  const auto schedule = sched::OneFOneBSchedule(4, 8);
  const sim::UniformCostModel costs(1.0, 2.0, 0.0, 0.0);
  ResilienceOptions options;
  options.reliability.mtbf_per_1000_gpus = 1e18;
  options.iterations = 10;
  const ResilienceMetrics m = SimulateTrainingRun(schedule, costs, options);
  // (n + p - 1) * (f + b) = 11 * 3.
  EXPECT_DOUBLE_EQ(m.iteration_time, 33.0);
  EXPECT_DOUBLE_EQ(m.useful_time, 330.0);
}

TEST(Resilience, FaultPlanForFailureScriptsTheFailStop) {
  const ReliabilityOptions rel;
  FailureRecord failure;
  failure.iteration = 12;
  failure.iteration_offset = 4.5;
  failure.stall = rel.recovery_time;
  const sim::FaultPlan plan = FaultPlanForFailure(failure, 10.0, rel);
  ASSERT_EQ(plan.fail_stops.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.fail_stops[0].time, 4.5);
  EXPECT_DOUBLE_EQ(plan.fail_stops[0].restart_time, rel.recovery_time);
  EXPECT_NO_THROW(plan.Validate(1));
}

TEST(Resilience, RejectsDegenerateInputs) {
  EXPECT_THROW(SimulateTrainingRun(0.0, {}), CheckError);
  ResilienceOptions bad_gpus;
  bad_gpus.gpus = 0;
  EXPECT_THROW(SimulateTrainingRun(1.0, bad_gpus), CheckError);
  // An MTBF far below the checkpoint interval can never make durable
  // progress; the runner must diagnose this instead of hanging.
  ResilienceOptions doomed;
  doomed.gpus = 1000;
  doomed.reliability.mtbf_per_1000_gpus = 1.0;  // 1s MTBF, 600s interval
  doomed.target_useful_time = 10'000.0;
  EXPECT_THROW(SimulateTrainingRun(10.0, doomed), CheckError);
}

}  // namespace
}  // namespace mepipe::core
