// Tests for memory-timeline recording (sim engine option) and its
// exports (trace/memory_timeline).
#include "trace/memory_timeline.h"

#include <gtest/gtest.h>

#include <fstream>

#include "common/check.h"
#include "sched/baselines.h"
#include "sim/cost_model.h"

namespace mepipe::trace {
namespace {

sim::SimResult RunRecorded(bool record = true) {
  const auto schedule = sched::OneFOneBSchedule(3, 4);
  const sim::UniformCostModel costs(1.0, 2.0, 0.0, 0.0, /*act_bytes=*/10);
  sim::EngineOptions options;
  options.record_memory_timeline = record;
  return Simulate(schedule, costs, options);
}

TEST(MemoryTimeline, RecordedWhenRequested) {
  const auto result = RunRecorded();
  ASSERT_EQ(result.memory_timeline.size(), 3u);
  for (const auto& series : result.memory_timeline) {
    EXPECT_FALSE(series.empty());
    // Times strictly increase; bytes are non-negative.
    for (std::size_t i = 0; i < series.size(); ++i) {
      EXPECT_GE(series[i].bytes, 0);
      if (i > 0) {
        EXPECT_GT(series[i].time, series[i - 1].time);
      }
    }
    // The iteration ends with all activations released.
    EXPECT_EQ(series.back().bytes, 0);
  }
}

TEST(MemoryTimeline, SeriesPeakMatchesMetrics) {
  const auto result = RunRecorded();
  for (std::size_t stage = 0; stage < 3; ++stage) {
    Bytes peak = 0;
    for (const auto& point : result.memory_timeline[stage]) {
      peak = std::max(peak, point.bytes);
    }
    EXPECT_EQ(peak, result.stages[stage].peak_activation) << "stage " << stage;
  }
}

TEST(MemoryTimeline, NotRecordedByDefault) {
  const auto result = RunRecorded(false);
  EXPECT_TRUE(result.memory_timeline.empty());
}

TEST(MemoryTimeline, CsvShape) {
  const std::string csv = MemoryTimelineCsv(RunRecorded());
  EXPECT_EQ(csv.rfind("stage,time_s,bytes\n", 0), 0u);
  EXPECT_NE(csv.find("\n0,"), std::string::npos);
  EXPECT_NE(csv.find("\n2,"), std::string::npos);
}

TEST(MemoryTimeline, CsvRequiresRecording) {
  EXPECT_THROW(MemoryTimelineCsv(RunRecorded(false)), CheckError);
}

TEST(MemoryTimeline, FileExport) {
  const std::string path = ::testing::TempDir() + "/mem_timeline.csv";
  WriteMemoryTimelineCsv(RunRecorded(), path);
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string header;
  std::getline(file, header);
  EXPECT_EQ(header, "stage,time_s,bytes");
  std::remove(path.c_str());
}

TEST(MemoryTimeline, Sparklines) {
  const std::string art = RenderMemorySparklines(RunRecorded(), 60);
  EXPECT_NE(art.find("stage 0 |"), std::string::npos);
  EXPECT_NE(art.find("stage 2 |"), std::string::npos);
  EXPECT_NE(art.find("peak"), std::string::npos);
  // Stage 0 holds the deepest warmup: its row must contain the peak glyph.
  const std::size_t row0 = art.find("stage 0");
  const std::size_t row1 = art.find("stage 1");
  EXPECT_NE(art.substr(row0, row1 - row0).find('#'), std::string::npos);
}

}  // namespace
}  // namespace mepipe::trace
