// Tests for the production cost model (core/training_cost).
#include "core/training_cost.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "hw/cluster.h"
#include "model/transformer.h"

namespace mepipe::core {
namespace {

using sched::OpId;
using sched::OpKind;

struct Fixture {
  model::TransformerConfig config = model::Llama13B();
  hw::ClusterSpec cluster = hw::Rtx4090Cluster();

  sched::PipelineProblem Problem(const Strategy& s, int micros = 4) {
    sched::PipelineProblem problem;
    problem.stages = s.pp;
    problem.virtual_chunks = s.vp;
    problem.slices = s.spp;
    problem.micros = micros;
    problem.split_backward =
        s.method == Method::kSvpp || s.method == Method::kZb1p || s.method == Method::kZbv;
    return problem;
  }

  Strategy Mepipe(int pp, int dp, int spp) {
    Strategy s;
    s.method = Method::kSvpp;
    s.pp = pp;
    s.dp = dp;
    s.spp = spp;
    return s;
  }
};

TEST(TrainingCost, LaterSlicesCostMoreForward) {
  Fixture fx;
  const Strategy s = fx.Mepipe(8, 8, 4);
  TrainingCostModel costs(fx.config, s, fx.cluster, fx.Problem(s));
  const Seconds first = costs.ComputeTime({OpKind::kForward, 0, 0, 1});
  const Seconds last = costs.ComputeTime({OpKind::kForward, 0, 3, 1});
  EXPECT_GT(last, first);  // causal-attention imbalance (§5)
}

TEST(TrainingCost, WeightGradBalancedAcrossSlices) {
  Fixture fx;
  const Strategy s = fx.Mepipe(8, 8, 4);
  TrainingCostModel costs(fx.config, s, fx.cluster, fx.Problem(s));
  EXPECT_DOUBLE_EQ(costs.ComputeTime({OpKind::kWeightGrad, 0, 0, 1}),
                   costs.ComputeTime({OpKind::kWeightGrad, 0, 3, 1}));
}

TEST(TrainingCost, GemmsPartitionTheWholeW) {
  Fixture fx;
  const Strategy s = fx.Mepipe(8, 8, 4);
  TrainingCostModel costs(fx.config, s, fx.cluster, fx.Problem(s));
  const OpId w{OpKind::kWeightGrad, 0, 1, 2};
  const int count = costs.WeightGradGemmCount(w);
  EXPECT_EQ(count, 5 * 7);  // 5 layers per chunk × 7 GEMMs
  Seconds total = 0;
  for (int k = 0; k < count; ++k) {
    total += costs.ComputeTime({OpKind::kWeightGradGemm, 0, 1, 2, k});
  }
  // Sum of GEMMs ≈ whole W (modulo per-launch overhead).
  EXPECT_NEAR(total, costs.ComputeTime(w), costs.ComputeTime(w) * 0.15);
}

TEST(TrainingCost, HeadChunkHasExtraGemm) {
  Fixture fx;
  const Strategy s = fx.Mepipe(8, 8, 4);
  TrainingCostModel costs(fx.config, s, fx.cluster, fx.Problem(s));
  EXPECT_EQ(costs.WeightGradGemmCount({OpKind::kWeightGrad, 0, 0, 7}), 4 * 7 + 1);
}

TEST(TrainingCost, TransfersScaleWithSliceTokens) {
  Fixture fx;
  const Strategy s = fx.Mepipe(8, 8, 4);
  TrainingCostModel costs(fx.config, s, fx.cluster, fx.Problem(s));
  const Seconds t = costs.TransferTime({OpKind::kForward, 0, 0, 1});
  EXPECT_GT(t, 0);

  const Strategy s8 = fx.Mepipe(8, 8, 8);
  TrainingCostModel costs8(fx.config, s8, fx.cluster, fx.Problem(s8));
  EXPECT_LT(costs8.TransferTime({OpKind::kForward, 0, 0, 1}), t);
}

TEST(TrainingCost, RecomputeShrinksActivationsAndSlowsBackward) {
  Fixture fx;
  Strategy plain;
  plain.method = Method::kDapple;
  plain.pp = 8;
  plain.dp = 8;
  Strategy recomputed = plain;
  recomputed.recompute = true;
  TrainingCostModel a(fx.config, plain, fx.cluster, fx.Problem(plain));
  TrainingCostModel b(fx.config, recomputed, fx.cluster, fx.Problem(recomputed));
  EXPECT_LT(b.ActivationBytes({OpKind::kForward, 0, 0, 1}),
            a.ActivationBytes({OpKind::kForward, 0, 0, 1}) / 5);
  EXPECT_GT(b.ComputeTime({OpKind::kBackward, 0, 0, 1}),
            a.ComputeTime({OpKind::kBackward, 0, 0, 1}));
}

TEST(TrainingCost, CpAddsCommToForward) {
  Fixture fx;
  Strategy nocp;
  nocp.method = Method::kDapple;
  nocp.pp = 8;
  nocp.dp = 8;
  Strategy cp = nocp;
  cp.dp = 4;
  cp.cp = 2;
  TrainingCostModel a(fx.config, nocp, fx.cluster, fx.Problem(nocp));
  TrainingCostModel b(fx.config, cp, fx.cluster, fx.Problem(cp));
  // CP halves tokens per rank but adds per-layer KV exchange; compare the
  // per-token cost.
  const Seconds full = a.ComputeTime({OpKind::kForward, 0, 0, 1});
  const Seconds half = b.ComputeTime({OpKind::kForward, 0, 0, 1});
  EXPECT_GT(half * 2, full);  // 2 half-forwards cost more than 1 full
}

TEST(TrainingCost, StaticMemoryDropsWithPp) {
  Fixture fx;
  const Strategy p8 = fx.Mepipe(8, 8, 4);
  const Strategy p4 = fx.Mepipe(4, 16, 4);
  TrainingCostModel a(fx.config, p8, fx.cluster, fx.Problem(p8));
  TrainingCostModel b(fx.config, p4, fx.cluster, fx.Problem(p4));
  EXPECT_LT(a.MaxStaticMemory(), b.MaxStaticMemory());
}

TEST(TrainingCost, DpSyncGrowsWithParamBytes) {
  Fixture fx;
  const Strategy p8 = fx.Mepipe(8, 8, 4);
  const Strategy p4 = fx.Mepipe(4, 16, 4);
  TrainingCostModel a(fx.config, p8, fx.cluster, fx.Problem(p8));
  TrainingCostModel b(fx.config, p4, fx.cluster, fx.Problem(p4));
  EXPECT_GT(b.DpSyncTime(), 0.0);
  EXPECT_GT(b.DpSyncTime(), a.DpSyncTime() * 0.9);
}

TEST(TrainingCost, RejectsUnsupportedCombinations) {
  Fixture fx;
  Strategy bad = fx.Mepipe(8, 8, 4);
  bad.cp = 2;  // cp and spp together
  EXPECT_THROW(TrainingCostModel(fx.config, bad, fx.cluster, fx.Problem(bad)), CheckError);

  Strategy indivisible = fx.Mepipe(16, 4, 4);
  indivisible.vp = 2;  // 40 units % 32 chunks != 0
  EXPECT_THROW(
      TrainingCostModel(fx.config, indivisible, fx.cluster, fx.Problem(indivisible)),
      CheckError);
}

TEST(TrainingCost, TpDividesComputeAndParams) {
  Fixture fx;
  fx.cluster = hw::A100Cluster();
  Strategy tp1;
  tp1.method = Method::kDapple;
  tp1.pp = 4;
  tp1.dp = 8;
  Strategy tp8 = tp1;
  tp8.dp = 1;
  tp8.tp = 8;
  TrainingCostModel a(fx.config, tp1, fx.cluster, fx.Problem(tp1));
  TrainingCostModel b(fx.config, tp8, fx.cluster, fx.Problem(tp8));
  EXPECT_LT(b.MaxStaticMemory(), a.MaxStaticMemory());
  EXPECT_LT(b.ActivationBytes({OpKind::kForward, 0, 0, 1}),
            a.ActivationBytes({OpKind::kForward, 0, 0, 1}));
}

TEST(TrainingCost, CheckpointShardShrinksWithPipelineDepth) {
  // The worst writer carries its stage's bf16 parameters (∝ 1/pp) plus
  // its ZeRO-1 optimizer shard (invariant: total·opt_bytes/(pp·dp·cp)
  // with pp·dp·cp fixed at the world size). Deeper pipelines therefore
  // checkpoint strictly cheaper per rank.
  Fixture fx;
  const Strategy shallow = fx.Mepipe(4, 16, 4);
  const Strategy deep = fx.Mepipe(8, 8, 4);
  TrainingCostModel a(fx.config, shallow, fx.cluster, fx.Problem(shallow));
  TrainingCostModel b(fx.config, deep, fx.cluster, fx.Problem(deep));
  EXPECT_GT(a.CheckpointShardBytes(), b.CheckpointShardBytes());
  // Total restore state is layout-independent up to partition rounding.
  EXPECT_NEAR(static_cast<double>(a.CheckpointStateBytes()),
              static_cast<double>(b.CheckpointStateBytes()),
              0.02 * static_cast<double>(a.CheckpointStateBytes()));
  // A shard is one rank's slice of the state, never the whole of it.
  EXPECT_LT(a.CheckpointShardBytes(), a.CheckpointStateBytes());
}

TEST(TrainingCost, StrategyToString) {
  Fixture fx;
  Strategy s = fx.Mepipe(8, 8, 4);
  EXPECT_EQ(s.ToString(), "MEPipe(pp=8,dp=8,spp=4)");
  s.recompute = true;
  s.method = Method::kDapple;
  s.spp = 1;
  s.cp = 2;
  s.dp = 4;
  EXPECT_EQ(s.ToString(), "DAPPLE(pp=8,dp=4,cp=2,recomp)");
}

}  // namespace
}  // namespace mepipe::core
