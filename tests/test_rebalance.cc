// Tests for the straggler-aware rebalancing subsystem (core/rebalance):
// the bottleneck partitioner, slowdown estimation, plan construction,
// the re-priced cost model, and the end-to-end mitigation driver's
// acceptance margin under a persistent straggler.
#include "core/rebalance.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "core/svpp.h"
#include "sched/baselines.h"
#include "sim/engine.h"

namespace mepipe::core {
namespace {

using sched::OpId;
using sched::OpKind;

// ---------------------------------------------------------------------------
// PartitionUnitsBySpeed

double Bottleneck(const std::vector<int>& units, const std::vector<double>& slowdown) {
  double worst = 0;
  for (std::size_t i = 0; i < units.size(); ++i) {
    worst = std::max(worst, units[i] * slowdown[i]);
  }
  return worst;
}

// Exhaustively enumerates every partition of `total` into |slowdown|
// parts >= min_units and returns the optimal bottleneck.
double BruteForceBottleneck(int total, const std::vector<double>& slowdown, int min_units,
                            std::size_t index = 0, std::vector<int>* prefix = nullptr) {
  std::vector<int> storage;
  if (prefix == nullptr) {
    prefix = &storage;
  }
  if (index + 1 == slowdown.size()) {
    const int last = total;
    if (last < min_units) {
      return 1e300;
    }
    prefix->push_back(last);
    const double result = Bottleneck(*prefix, slowdown);
    prefix->pop_back();
    return result;
  }
  double best = 1e300;
  for (int u = min_units; u <= total - min_units * static_cast<int>(slowdown.size() - index - 1);
       ++u) {
    prefix->push_back(u);
    best = std::min(best, BruteForceBottleneck(total - u, slowdown, min_units, index + 1, prefix));
    prefix->pop_back();
  }
  return best;
}

TEST(PartitionUnitsBySpeed, EqualSpeedsGiveEvenPartition) {
  const std::vector<int> units = PartitionUnitsBySpeed(32, {1.0, 1.0, 1.0, 1.0}, 1);
  EXPECT_EQ(units, (std::vector<int>{8, 8, 8, 8}));
}

TEST(PartitionUnitsBySpeed, MovesUnitsOffTheSlowWorker) {
  const std::vector<double> slowdown = {1.0, 1.0, 2.0, 1.0};
  const std::vector<int> units = PartitionUnitsBySpeed(32, slowdown, 1);
  EXPECT_EQ(std::accumulate(units.begin(), units.end(), 0), 32);
  EXPECT_LT(units[2], 8);                          // slow worker sheds layers
  EXPECT_LE(Bottleneck(units, slowdown), 10.0 + 1e-9);  // optimal for this case
}

TEST(PartitionUnitsBySpeed, MatchesBruteForceOnSmallCases) {
  const std::vector<std::vector<double>> profiles = {
      {1.0, 1.0},       {1.0, 2.0},        {1.0, 1.5, 3.0},
      {2.0, 1.0, 1.25}, {1.0, 1.0, 1.0, 4.0},
  };
  for (const auto& slowdown : profiles) {
    for (int total = static_cast<int>(slowdown.size()); total <= 12; ++total) {
      const std::vector<int> units = PartitionUnitsBySpeed(total, slowdown, 1);
      ASSERT_EQ(units.size(), slowdown.size());
      EXPECT_EQ(std::accumulate(units.begin(), units.end(), 0), total);
      for (const int u : units) {
        EXPECT_GE(u, 1);
      }
      EXPECT_NEAR(Bottleneck(units, slowdown), BruteForceBottleneck(total, slowdown, 1), 1e-9)
          << "suboptimal partition for total=" << total;
    }
  }
}

TEST(PartitionUnitsBySpeed, RespectsMinUnits) {
  const std::vector<int> units = PartitionUnitsBySpeed(8, {1.0, 1.0, 100.0, 1.0}, 2);
  EXPECT_EQ(std::accumulate(units.begin(), units.end(), 0), 8);
  for (const int u : units) {
    EXPECT_EQ(u, 2);  // min forces the even split despite the slow worker
  }
}

TEST(PartitionUnitsBySpeed, RejectsBadInputs) {
  EXPECT_THROW(PartitionUnitsBySpeed(2, {1.0, 1.0, 1.0}, 1), CheckError);  // too few units
  EXPECT_THROW(PartitionUnitsBySpeed(8, {1.0, 0.0}, 1), CheckError);       // zero speed
  EXPECT_THROW(PartitionUnitsBySpeed(8, {}, 1), CheckError);               // no workers
  EXPECT_THROW(PartitionUnitsBySpeed(8, {1.0, 1.0}, 0), CheckError);       // empty chunks
}

// ---------------------------------------------------------------------------
// Slowdown estimation

TEST(StageProfile, ValidateRejectsMalformedProfiles) {
  StageProfile profile;
  profile.slowdown = {1.0, 0.5};
  EXPECT_THROW(profile.Validate(2), CheckError);  // below 1
  profile.slowdown = {1.0};
  EXPECT_THROW(profile.Validate(2), CheckError);  // wrong arity
  profile.slowdown = {1.0, 2.0};
  EXPECT_NO_THROW(profile.Validate(2));
  EXPECT_DOUBLE_EQ(profile.max_slowdown(), 2.0);
}

TEST(EstimateStageSlowdowns, RecoversAPersistentStragglerFromBusyTimes) {
  const sched::Schedule schedule = sched::OneFOneBSchedule(4, 8);
  const sim::UniformCostModel costs(1.0, 2.0, 0.0, 0.05);
  const sim::SimResult clean = sim::Simulate(schedule, costs);

  sim::FaultPlan faults;
  faults.stragglers.push_back({2, 0.0, 1e9, 2.0});
  sim::EngineOptions engine;
  engine.fault_plan = faults;
  const sim::SimResult faulted = sim::Simulate(schedule, costs, engine);

  const StageProfile profile = EstimateStageSlowdowns(clean, faulted);
  ASSERT_EQ(profile.slowdown.size(), 4u);
  EXPECT_NEAR(profile.slowdown[0], 1.0, 1e-9);
  EXPECT_NEAR(profile.slowdown[1], 1.0, 1e-9);
  EXPECT_NEAR(profile.slowdown[2], 2.0, 1e-6);
  EXPECT_NEAR(profile.slowdown[3], 1.0, 1e-9);
}

TEST(EstimateStageSlowdowns, TimeAveragesPlanWindows) {
  sim::FaultPlan faults;
  faults.stragglers.push_back({1, 0.0, 50.0, 3.0});   // half the horizon at 3x
  faults.stragglers.push_back({1, 50.0, 200.0, 1.0}); // explicit no-op window
  const StageProfile profile = EstimateStageSlowdowns(faults, 2, 100.0);
  ASSERT_EQ(profile.slowdown.size(), 2u);
  EXPECT_NEAR(profile.slowdown[0], 1.0, 1e-12);
  EXPECT_NEAR(profile.slowdown[1], 2.0, 1e-12);  // 1 + 0.5 * (3 - 1)
}

// ---------------------------------------------------------------------------
// Rebalance planning

TEST(Rebalance, PlanPreservesUnitsAndRespectsCapFloor) {
  StageProfile profile;
  profile.slowdown = {1.0, 1.0, 2.0, 1.0};
  sched::PipelineProblem problem;
  problem.stages = 4;
  problem.slices = 4;
  problem.micros = 16;
  problem.split_backward = true;

  RebalanceOptions options;
  options.units_per_chunk = 8;
  options.base_caps = {7, 6, 5, 4};
  const RebalancePlan plan = Rebalance(profile, problem, options);

  ASSERT_EQ(plan.new_units.size(), 4u);
  EXPECT_EQ(std::accumulate(plan.new_units.begin(), plan.new_units.end(), 0), 32);
  EXPECT_TRUE(plan.repartitioned());
  EXPECT_LT(plan.new_units[2], 8);
  EXPECT_GT(plan.predicted_gain, 1.0);
  ASSERT_EQ(plan.new_caps.size(), 4u);
  for (const int cap : plan.new_caps) {
    EXPECT_GE(cap, problem.virtual_chunks * problem.slices);
  }
  // The slow stage sheds layers, so its cap grows.
  EXPECT_GT(plan.new_caps[2], plan.old_caps[2]);
  EXPECT_NE(plan.Summary(), "no-op");
  const std::vector<std::string> labels = plan.StageLabels(problem);
  ASSERT_EQ(labels.size(), 4u);
  for (const std::string& label : labels) {
    EXPECT_FALSE(label.empty());
  }
}

TEST(Rebalance, UniformProfileIsANoOp) {
  StageProfile profile;
  profile.slowdown = {1.0, 1.0, 1.0, 1.0};
  sched::PipelineProblem problem;
  problem.stages = 4;
  problem.micros = 8;

  RebalanceOptions options;
  options.units_per_chunk = 8;
  options.base_caps = {4, 3, 2, 1};
  const RebalancePlan plan = Rebalance(profile, problem, options);
  EXPECT_FALSE(plan.any_change());
  EXPECT_DOUBLE_EQ(plan.predicted_gain, 1.0);
}

// ---------------------------------------------------------------------------
// RebalancedCostModel

TEST(RebalancedCostModel, ScalesComputeWithTheUnitRatio) {
  sched::PipelineProblem problem;
  problem.stages = 2;
  problem.micros = 2;
  problem.split_backward = true;

  RebalancePlan plan;
  plan.old_units = {8, 8};
  plan.new_units = {12, 4};
  const sim::UniformCostModel base(1.0, 2.0, 1.0, 0.05, 100, 50, 7);
  const RebalancedCostModel costs(base, problem, plan);

  const OpId f0{OpKind::kForward, 0, 0, 0};
  const OpId f1{OpKind::kForward, 0, 0, 1};
  const OpId b1{OpKind::kBackward, 0, 0, 1};
  const OpId w1{OpKind::kWeightGrad, 0, 0, 1};
  EXPECT_DOUBLE_EQ(costs.ComputeTime(f0), 1.5);   // 12/8
  EXPECT_DOUBLE_EQ(costs.ComputeTime(f1), 0.5);   // 4/8
  EXPECT_DOUBLE_EQ(costs.ComputeTime(b1), 1.0);   // 2 * 0.5
  EXPECT_DOUBLE_EQ(costs.ComputeTime(w1), 0.5);
  // Transfers move boundary tensors — layer-count independent.
  EXPECT_DOUBLE_EQ(costs.TransferTime(f0), 0.05);
  // Activations scale with the layer share; GEMM count stays the base's.
  EXPECT_EQ(costs.ActivationBytes(f0), 150);
  EXPECT_EQ(costs.ActivationBytes(f1), 50);
  EXPECT_EQ(costs.ActGradBytes(b1), 25);
  EXPECT_EQ(costs.WeightGradGemmCount(w1), 7);
}

TEST(RebalancedCostModel, RejectsMismatchedPlans) {
  sched::PipelineProblem problem;
  problem.stages = 2;
  RebalancePlan plan;
  plan.old_units = {8, 8, 8};  // three chunks for a two-chunk problem
  plan.new_units = {8, 8, 8};
  const sim::UniformCostModel base(1.0, 2.0, 1.0, 0.0);
  EXPECT_THROW(RebalancedCostModel(base, problem, plan), CheckError);
}

// ---------------------------------------------------------------------------
// End-to-end mitigation

sim::FaultPlan PersistentStraggler(int stage, double slowdown) {
  sim::FaultPlan faults;
  faults.stragglers.push_back({stage, 0.0, 1e9, slowdown});
  return faults;
}

TEST(MitigateStragglers, RecoversMostOfTheSvppDegradation) {
  SvppOptions svpp;
  svpp.stages = 4;
  svpp.slices = 4;
  svpp.micros = 16;
  const sched::Schedule schedule = GenerateSvpp(svpp);

  const sim::UniformCostModel costs(1.0, 1.0, 1.0, 0.05);
  const sim::FaultPlan faults = PersistentStraggler(2, 2.0);

  MitigationOptions options;
  options.rebalance.units_per_chunk = 8;
  const MitigationReport report = MitigateStragglers(schedule, costs, faults, options);

  // The estimator sees the dilation, the plan sheds layers off stage 2.
  EXPECT_NEAR(report.profile.slowdown[2], 2.0, 0.05);
  EXPECT_TRUE(report.plan.repartitioned());
  EXPECT_LT(report.plan.new_units[2], 8);

  // Makespans are ordered clean < mitigated < faulted, and the
  // mitigation claws back a substantial margin (the acceptance bar).
  EXPECT_GT(report.faulted_makespan, report.clean_makespan);
  EXPECT_LT(report.mitigated_makespan, report.faulted_makespan);
  EXPECT_GT(report.improvement(), 1.15);
  EXPECT_LT(report.mitigated_degradation(), report.degradation());

  // The mitigated schedule is a valid program order for the same problem.
  EXPECT_NO_THROW(sched::ValidateSchedule(report.mitigated_schedule));
  EXPECT_EQ(report.mitigated_schedule.problem.stages, 4);
  EXPECT_NE(report.mitigated_schedule.method.find("+rebalanced"), std::string::npos);
}

TEST(MitigateStragglers, AlsoImproves1F1B) {
  const sched::Schedule schedule = sched::OneFOneBSchedule(4, 16);
  const sim::UniformCostModel costs(1.0, 2.0, 0.0, 0.05);
  const sim::FaultPlan faults = PersistentStraggler(2, 2.0);

  MitigationOptions options;
  options.rebalance.units_per_chunk = 8;
  const MitigationReport report = MitigateStragglers(schedule, costs, faults, options);

  EXPECT_LT(report.mitigated_makespan, report.faulted_makespan);
  EXPECT_GT(report.improvement(), 1.15);
}

TEST(MitigateStragglers, EmptyPlanIsANoOp) {
  const sched::Schedule schedule = sched::OneFOneBSchedule(2, 4);
  const sim::UniformCostModel costs(1.0, 2.0, 0.0, 0.05);
  const sim::FaultPlan faults;  // no faults

  MitigationOptions options;
  options.rebalance.units_per_chunk = 8;
  const MitigationReport report = MitigateStragglers(schedule, costs, faults, options);
  EXPECT_FALSE(report.plan.any_change());
  EXPECT_NEAR(report.faulted_makespan, report.clean_makespan, 1e-9);
  EXPECT_NEAR(report.improvement(), 1.0, 0.05);
}

TEST(WindowedEstimation, RecoversAStragglerFromPartialWindows) {
  // 3 iterations' busy sums with stage 1 running 2x slow.
  const std::vector<Seconds> baseline = {1.0, 1.0, 1.0, 1.0};
  const std::vector<Seconds> sums = {3.0, 6.0, 3.0, 3.0};
  const StageProfile profile = EstimateStageSlowdowns(baseline, sums, 3);
  ASSERT_EQ(profile.slowdown.size(), 4u);
  EXPECT_NEAR(profile.slowdown[0], 1.0, 1e-9);
  EXPECT_NEAR(profile.slowdown[1], 2.0, 1e-9);
}

TEST(WindowedEstimation, UniformDilationIsNotAStraggler) {
  // A degraded fleet runs *every* stage proportionally slower; the
  // median normalization must read that as all-ones, not a 1.5x fleet-
  // wide straggler.
  const std::vector<Seconds> baseline = {1.0, 1.0, 1.0, 1.0};
  const std::vector<Seconds> sums = {3.0, 3.0, 3.0, 3.0};  // 2 its, 1.5x
  const StageProfile profile = EstimateStageSlowdowns(baseline, sums, 2);
  for (const double s : profile.slowdown) {
    EXPECT_NEAR(s, 1.0, 1e-9);
  }
}

TEST(WindowedEstimation, ValidatesInputs) {
  EXPECT_THROW(EstimateStageSlowdowns({1.0, 1.0}, {1.0}, 1), CheckError);
  EXPECT_THROW(EstimateStageSlowdowns({1.0}, {1.0}, 0), CheckError);
  EXPECT_THROW(EstimateStageSlowdowns({1.0}, {-1.0}, 1), CheckError);
  WindowedProfileOptions bad;
  bad.trigger_threshold = 1.0;
  EXPECT_THROW(bad.Validate(), CheckError);
  bad = {};
  bad.min_observations = 9;  // above the 8-iteration window
  EXPECT_THROW(bad.Validate(), CheckError);
}

TEST(SlowdownWindowEstimator, HysteresisRequiresConsecutiveDeviantWindows) {
  WindowedProfileOptions options;
  options.window = 4;
  options.min_observations = 2;
  options.trigger_threshold = 1.15;
  options.hysteresis_windows = 2;
  SlowdownWindowEstimator estimator({1.0, 1.0, 1.0, 1.0}, options);

  const std::vector<Seconds> clean = {1.0, 1.0, 1.0, 1.0};
  const std::vector<Seconds> straggled = {1.0, 2.0, 1.0, 1.0};

  // One fully deviant window: not persistent yet.
  for (int i = 0; i < 4; ++i) {
    estimator.Observe(straggled);
  }
  EXPECT_EQ(estimator.deviant_windows(), 1);
  EXPECT_FALSE(estimator.PersistentDeviation());

  // A clean window re-arms the hysteresis completely.
  for (int i = 0; i < 4; ++i) {
    estimator.Observe(clean);
  }
  EXPECT_EQ(estimator.deviant_windows(), 0);
  EXPECT_FALSE(estimator.PersistentDeviation());

  // Two consecutive deviant windows fire.
  for (int i = 0; i < 8; ++i) {
    estimator.Observe(straggled);
  }
  EXPECT_EQ(estimator.deviant_windows(), 2);
  EXPECT_TRUE(estimator.PersistentDeviation());
  // The deviation is visible in the closed window's profile and its raw
  // (unclamped) ratios.
  EXPECT_NEAR(estimator.WindowProfile().slowdown[1], 2.0, 1e-9);
  EXPECT_NEAR(estimator.WindowRatios()[1], 2.0, 1e-9);
}

TEST(SlowdownWindowEstimator, DetectsDeviationInBothDirections) {
  // A stage running *faster* than the plan expected (a straggler the
  // plan still provisions for has cleared) must count as deviant too.
  WindowedProfileOptions options;
  options.window = 2;
  options.min_observations = 1;
  options.hysteresis_windows = 1;
  SlowdownWindowEstimator estimator({1.0, 2.0, 1.0, 1.0}, options);
  const std::vector<Seconds> cleared = {1.0, 1.0, 1.0, 1.0};
  estimator.Observe(cleared);
  estimator.Observe(cleared);
  EXPECT_TRUE(estimator.PersistentDeviation());
  // Raw ratio dips below 1 on the recovered stage; the clamped profile
  // stays >= 1 per the StageProfile contract.
  EXPECT_LT(estimator.WindowRatios()[1], 1.0);
  EXPECT_GE(estimator.WindowProfile().slowdown[1], 1.0);
}

TEST(SlowdownWindowEstimator, PartialWindowsRespectTheConfidenceGate) {
  WindowedProfileOptions options;
  options.window = 8;
  options.min_observations = 4;
  SlowdownWindowEstimator estimator({1.0, 1.0}, options);
  const std::vector<Seconds> straggled = {1.0, 3.0};

  // Under the gate: the partial profile is all-ones and closing the
  // window discards the observations.
  estimator.Observe(straggled);
  estimator.Observe(straggled);
  EXPECT_NEAR(estimator.PartialProfile().slowdown[1], 1.0, 1e-9);
  EXPECT_FALSE(estimator.ClosePartialWindow());
  EXPECT_EQ(estimator.windows_closed(), 0);

  // At the gate: the partial window counts.
  for (int i = 0; i < 4; ++i) {
    estimator.Observe(straggled);
  }
  EXPECT_NEAR(estimator.PartialProfile().slowdown[1], 3.0, 1e-9);
  EXPECT_TRUE(estimator.ClosePartialWindow());
  EXPECT_EQ(estimator.windows_closed(), 1);
  EXPECT_EQ(estimator.deviant_windows(), 1);
}

TEST(SlowdownWindowEstimator, ResetReplacesTheBaseline) {
  WindowedProfileOptions options;
  options.window = 2;
  options.min_observations = 1;
  SlowdownWindowEstimator estimator({1.0, 1.0}, options);
  estimator.Observe({1.0, 2.0});
  // Adopting the re-plan: the new baseline *expects* the slowdown, so
  // the same observations now read as clean.
  estimator.Reset({1.0, 2.0});
  EXPECT_EQ(estimator.deviant_windows(), 0);
  estimator.Observe({1.0, 2.0});
  estimator.Observe({1.0, 2.0});
  EXPECT_EQ(estimator.windows_closed(), 1);
  EXPECT_EQ(estimator.deviant_windows(), 0);
  EXPECT_THROW(estimator.Observe({1.0}), CheckError);  // size mismatch
  SlowdownWindowEstimator dormant;
  EXPECT_THROW(dormant.Observe({1.0}), CheckError);  // unset baseline
}

TEST(MitigateStragglers, HonorsAnExplicitProfile) {
  const sched::Schedule schedule = sched::OneFOneBSchedule(4, 8);
  const sim::UniformCostModel costs(1.0, 2.0, 0.0, 0.05);
  const sim::FaultPlan faults = PersistentStraggler(1, 3.0);

  MitigationOptions options;
  options.rebalance.units_per_chunk = 8;
  options.profile.slowdown = {1.0, 3.0, 1.0, 1.0};
  const MitigationReport report = MitigateStragglers(schedule, costs, faults, options);
  EXPECT_EQ(report.profile.slowdown, options.profile.slowdown);
  EXPECT_LT(report.mitigated_makespan, report.faulted_makespan);
}

}  // namespace
}  // namespace mepipe::core
