// Tests for the capped greedy list scheduler (sched/generator).
#include "sched/generator.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "sched/baselines.h"
#include "sched/schedule.h"
#include "sched/validate.h"
#include "sched/zbv.h"

namespace mepipe::sched {
namespace {

PipelineProblem MakeProblem(int p, int v, int s, int n, bool split = false) {
  PipelineProblem problem;
  problem.stages = p;
  problem.virtual_chunks = v;
  problem.slices = s;
  problem.micros = n;
  problem.split_backward = split;
  return problem;
}

TEST(CapSchedule, MatchesOneFOneBWarmup) {
  const std::vector<int> caps = CapSchedule(4, 4, 1);
  EXPECT_EQ(caps, (std::vector<int>{4, 3, 2, 1}));
}

TEST(CapSchedule, RespectsFloor) {
  const std::vector<int> caps = CapSchedule(4, 6, 4);
  EXPECT_EQ(caps, (std::vector<int>{6, 5, 4, 4}));
}

TEST(CapSchedule, RejectsCapBelowFloor) {
  EXPECT_THROW(CapSchedule(4, 1, 2), CheckError);
}

TEST(Generator, ReproducesCanonicalOneFOneB) {
  const PipelineProblem problem = MakeProblem(4, 1, 1, 8);
  GeneratorOptions options;
  options.inflight_cap = CapSchedule(4, 4, 1);
  const Schedule schedule = GenerateCapped(problem, options, "1F1B");

  // Last stage strictly alternates F and B starting with micro 0.
  const auto& last = schedule.stage_ops[3];
  ASSERT_EQ(last.size(), 16u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(last[2 * i].kind, OpKind::kForward) << i;
    EXPECT_EQ(last[2 * i].micro, i);
    EXPECT_EQ(last[2 * i + 1].kind, OpKind::kBackward) << i;
    EXPECT_EQ(last[2 * i + 1].micro, i);
  }
  // Stage 0 warms up with exactly p forwards before its first backward.
  EXPECT_EQ(FirstBackwardIndex(schedule, 0), 4u);
  EXPECT_EQ(PeakRetainedForwards(schedule, 0), 4);
  EXPECT_EQ(PeakRetainedForwards(schedule, 3), 1);
}

TEST(Generator, ForwardFirstProducesGPipeShape) {
  const PipelineProblem problem = MakeProblem(3, 1, 1, 5);
  GeneratorOptions options;
  options.backward_first = false;
  const Schedule schedule = GenerateCapped(problem, options, "GPipe");
  // Every stage runs all its forwards before any backward.
  for (int stage = 0; stage < 3; ++stage) {
    EXPECT_EQ(FirstBackwardIndex(schedule, stage), 5u) << "stage " << stage;
  }
}

TEST(Generator, CapLimitsRetainedForwards) {
  for (int f = 2; f <= 6; ++f) {
    const PipelineProblem problem = MakeProblem(4, 1, 2, 6);
    GeneratorOptions options;
    options.inflight_cap = CapSchedule(4, f, 2);
    const Schedule schedule = GenerateCapped(problem, options, "capped");
    for (int stage = 0; stage < 4; ++stage) {
      EXPECT_LE(PeakRetainedForwards(schedule, stage), std::max(2, f - stage))
          << "f=" << f << " stage=" << stage;
    }
  }
}

TEST(Generator, DeadlocksDetectedWhenCapBelowFloor) {
  const PipelineProblem problem = MakeProblem(4, 1, 2, 4);
  GeneratorOptions options;
  options.inflight_cap = {1, 1, 1, 1};  // below the v*s = 2 floor
  EXPECT_THROW(GenerateCapped(problem, options, "bad"), CheckError);
}

TEST(Generator, SplitBackwardEmitsDeferredW) {
  const PipelineProblem problem = MakeProblem(2, 1, 1, 2, /*split=*/true);
  GeneratorOptions options;
  options.wgrad = WgradPolicy::kDeferred;
  const Schedule schedule = GenerateCapped(problem, options, "split");
  EXPECT_TRUE(schedule.deferred_wgrad);
  for (const auto& ops : schedule.stage_ops) {
    for (const OpId& op : ops) {
      EXPECT_NE(op.kind, OpKind::kWeightGrad);
    }
  }
}

TEST(Generator, SplitBackwardStaticWWhenRequested) {
  const PipelineProblem problem = MakeProblem(2, 1, 1, 2, /*split=*/true);
  GeneratorOptions options;
  options.wgrad = WgradPolicy::kLowestPriority;
  const Schedule schedule = GenerateCapped(problem, options, "split-static");
  EXPECT_FALSE(schedule.deferred_wgrad);
  int w_count = 0;
  for (const auto& ops : schedule.stage_ops) {
    for (const OpId& op : ops) {
      w_count += op.kind == OpKind::kWeightGrad ? 1 : 0;
    }
  }
  EXPECT_EQ(w_count, 2 * 2);  // one W per (stage-chunk, micro)
}

// Property sweep: every generated schedule validates, contains the right
// op count, and respects its cap, across a grid of shapes.
struct GenCase {
  int p, v, s, n, f;
};

class GeneratorSweep : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorSweep, ValidCappedSchedules) {
  const GenCase c = GetParam();
  const PipelineProblem problem = MakeProblem(c.p, c.v, c.s, c.n);
  GeneratorOptions options;
  options.inflight_cap = CapSchedule(c.p, c.f, c.v * c.s);
  const Schedule schedule = GenerateCapped(problem, options, "sweep");
  InvariantOptions invariants;
  invariants.costs.transfer_time = 0.05;
  for (int stage = 0; stage < c.p; ++stage) {
    EXPECT_EQ(schedule.stage_ops[static_cast<std::size_t>(stage)].size(),
              static_cast<std::size_t>(2 * c.n * c.s * c.v));
    EXPECT_LE(PeakRetainedForwards(schedule, stage),
              std::max(c.v * c.s, c.f - stage));
    invariants.retained_cap.push_back(std::max(c.v * c.s, c.f - stage));
  }
  ValidateScheduleInvariants(schedule, invariants);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeneratorSweep,
    ::testing::Values(GenCase{2, 1, 1, 4, 2}, GenCase{4, 1, 2, 4, 2}, GenCase{4, 1, 2, 4, 5},
                      GenCase{4, 2, 2, 4, 4}, GenCase{4, 2, 2, 4, 9}, GenCase{8, 1, 4, 8, 4},
                      GenCase{8, 1, 4, 8, 11}, GenCase{8, 2, 1, 8, 2}, GenCase{8, 2, 1, 8, 16},
                      GenCase{3, 1, 5, 2, 5}, GenCase{6, 2, 3, 7, 6}, GenCase{4, 3, 2, 8, 6},
                      GenCase{2, 1, 8, 3, 8}, GenCase{16, 1, 1, 4, 16}),
    [](const auto& info) {
      const GenCase& c = info.param;
      return "p" + std::to_string(c.p) + "v" + std::to_string(c.v) + "s" + std::to_string(c.s) +
             "n" + std::to_string(c.n) + "f" + std::to_string(c.f);
    });

// Randomized (seeded, splitmix64 — bit-identical across toolchains)
// sweep of generator options: every generated schedule must pass every
// invariant of the tabular validator, not just the structural checks.
TEST(GeneratorFuzz, RandomOptionShapesPassEveryInvariant) {
  SplitMixRng rng(0x5eedc0de2025ull);
  for (int trial = 0; trial < 64; ++trial) {
    const int p = 2 + static_cast<int>(rng.NextU64() % 7);  // 2..8
    const int v = 1 + static_cast<int>(rng.NextU64() % 2);  // 1..2
    const int s = 1 << (rng.NextU64() % 3);                 // 1, 2, 4
    const int n = 1 + static_cast<int>(rng.NextU64() % 8);  // 1..8
    const bool split = rng.NextU64() & 1;
    PipelineProblem problem = MakeProblem(p, v, s, n, split);
    if (v == 2 && (rng.NextU64() & 1)) {
      problem.placement = ChunkPlacement::kVShape;
    }

    GeneratorOptions options;
    const int floor = v * s;
    const int f = floor + static_cast<int>(rng.NextU64() % static_cast<std::uint64_t>(2 * p));
    options.inflight_cap = CapSchedule(p, f, floor);
    options.backward_first = rng.NextU64() & 1;
    options.child_count_backward_priority = rng.NextU64() & 1;
    if (split) {
      options.wgrad =
          (rng.NextU64() & 1) ? WgradPolicy::kDeferred : WgradPolicy::kLowestPriority;
      options.b_time = 1.0;
    }

    const Schedule schedule = GenerateCapped(problem, options, "fuzz");
    InvariantOptions invariants;
    invariants.costs.b_time = options.b_time;
    invariants.costs.transfer_time = options.transfer_time;
    // The generator's cap releases retained forwards at B; the
    // activation-cap invariant counts releases at W for static-split
    // schedules, so the cap is only asserted for the other shapes.
    if (!(split && options.wgrad == WgradPolicy::kLowestPriority)) {
      for (int stage = 0; stage < p; ++stage) {
        invariants.retained_cap.push_back(std::max(floor, f - stage));
      }
    }
    SCOPED_TRACE("trial " + std::to_string(trial) + ": p=" + std::to_string(p) +
                 " v=" + std::to_string(v) + " s=" + std::to_string(s) +
                 " n=" + std::to_string(n) + " f=" + std::to_string(f) +
                 " split=" + std::to_string(split));
    ValidateScheduleInvariants(schedule, invariants);
  }
}

// Same harness over every baseline construction: randomized shapes, all
// invariants.
TEST(GeneratorFuzz, RandomBaselineShapesPassEveryInvariant) {
  SplitMixRng rng(0xba5e11e2025ull);
  for (int trial = 0; trial < 32; ++trial) {
    const int p = 2 + static_cast<int>(rng.NextU64() % 7);   // 2..8
    const int n = 1 + static_cast<int>(rng.NextU64() % 12);  // 1..12
    const int s = 1 + static_cast<int>(rng.NextU64() % 4);   // 1..4
    SCOPED_TRACE("trial " + std::to_string(trial) + ": p=" + std::to_string(p) +
                 " n=" + std::to_string(n) + " s=" + std::to_string(s));
    std::vector<Schedule> schedules;
    schedules.push_back(GPipeSchedule(p, n));
    schedules.push_back(OneFOneBSchedule(p, n));
    schedules.push_back(TeraPipeSchedule(p, s, n));
    schedules.push_back(Zb1pSchedule(p, n));
    schedules.push_back(ZbvSchedule(p, n));
    schedules.push_back(ZbvCappedSchedule(p, n));
    schedules.push_back(HanayoSchedule(p, n));
    if (n % p == 0) {
      schedules.push_back(VppSchedule(p, 2, n));
    }
    for (const Schedule& schedule : schedules) {
      SCOPED_TRACE(schedule.method);
      InvariantOptions invariants;
      invariants.costs.transfer_time = 0.05;
      if (schedule.method == "ZBV") {
        invariants.retained_cap.assign(static_cast<std::size_t>(p),
                                       ZbvMaxRetainedForwards(p, n));
      }
      ValidateScheduleInvariants(schedule, invariants);
    }
  }
}

TEST(Generator, ChildCountPriorityStillValidates) {
  const PipelineProblem problem = MakeProblem(4, 2, 2, 4);
  GeneratorOptions options;
  options.inflight_cap = CapSchedule(4, 6, 4);
  options.child_count_backward_priority = true;
  const Schedule schedule = GenerateCapped(problem, options, "child-priority");
  ValidateSchedule(schedule);  // does not throw
  SUCCEED();
}

TEST(Generator, StageTimeScaleValidatesAndSchedules) {
  const PipelineProblem problem = MakeProblem(4, 1, 2, 6);
  GeneratorOptions options;
  options.inflight_cap = CapSchedule(4, 5, 2);
  options.stage_time_scale = {1.0, 1.0, 2.5, 1.0};
  const Schedule schedule = GenerateCapped(problem, options, "scaled");
  ValidateSchedule(schedule);

  // Wrong arity and non-positive entries are rejected.
  options.stage_time_scale = {1.0, 2.0};
  EXPECT_THROW(GenerateCapped(problem, options, "bad-arity"), CheckError);
  options.stage_time_scale = {1.0, 1.0, 0.0, 1.0};
  EXPECT_THROW(GenerateCapped(problem, options, "bad-scale"), CheckError);
}

TEST(GeneratorValidate, ReportsArityMismatchesBothDirections) {
  // Per-stage vectors shorter AND longer than the stage count are
  // structured errors — the long case previously sailed past the old
  // inline check only to index garbage (or silently ignore entries)
  // deep inside generation.
  GeneratorOptions options;
  for (const std::size_t len : {std::size_t{2}, std::size_t{7}}) {
    options.inflight_cap.assign(len, 4);
    options.stage_time_scale.assign(len, 1.0);
    const std::vector<GeneratorIssue> issues = options.Validate(/*stages=*/4);
    ASSERT_EQ(issues.size(), 2u) << "len=" << len;
    EXPECT_EQ(issues[0].code, GeneratorIssue::Code::kInflightCapArity);
    EXPECT_EQ(issues[1].code, GeneratorIssue::Code::kStageTimeScaleArity);
    for (const GeneratorIssue& issue : issues) {
      EXPECT_NE(issue.message.find(std::to_string(len)), std::string::npos);
      EXPECT_NE(issue.message.find('4'), std::string::npos);
    }
  }
  // Matching arity (or empty = uniform/uncapped) is clean.
  options.inflight_cap.assign(4, 4);
  options.stage_time_scale.assign(4, 1.0);
  EXPECT_TRUE(options.Validate(4).empty());
  options.inflight_cap.clear();
  options.stage_time_scale.clear();
  EXPECT_TRUE(options.Validate(4).empty());
}

TEST(GeneratorValidate, ReportsBadEntriesAndDurations) {
  GeneratorOptions options;
  options.inflight_cap = {4, -1, 4, 4};
  options.stage_time_scale = {1.0, 1.0, 0.0, 1.0};
  options.b_time = 0.0;
  options.transfer_time = -0.05;
  const std::vector<GeneratorIssue> issues = options.Validate(4);
  ASSERT_EQ(issues.size(), 4u);
  EXPECT_EQ(issues[0].code, GeneratorIssue::Code::kNegativeInflightCap);
  EXPECT_EQ(issues[0].stage, 1);
  EXPECT_EQ(issues[1].code, GeneratorIssue::Code::kNonPositiveTimeScale);
  EXPECT_EQ(issues[1].stage, 2);
  EXPECT_EQ(issues[2].code, GeneratorIssue::Code::kNonPositiveDuration);
  EXPECT_EQ(issues[3].code, GeneratorIssue::Code::kNegativeTransfer);
  for (const GeneratorIssue& issue : issues) {
    EXPECT_FALSE(issue.message.empty());
    EXPECT_NE(GeneratorIssueCodeName(issue.code), nullptr);
  }
}

TEST(GeneratorValidate, GenerateCappedThrowsOnLongVectors) {
  // The short-vector case is covered by StageTimeScaleValidatesAndSchedules;
  // the long-vector case is the half the old entry check missed.
  const PipelineProblem problem = MakeProblem(4, 1, 2, 6);
  GeneratorOptions long_cap;
  long_cap.inflight_cap = {4, 4, 4, 4, 4};
  EXPECT_THROW(GenerateCapped(problem, long_cap, "long-cap"), CheckError);
  GeneratorOptions long_scale;
  long_scale.stage_time_scale = {1.0, 1.0, 1.0, 1.0, 1.0};
  EXPECT_THROW(GenerateCapped(problem, long_scale, "long-scale"), CheckError);
}

TEST(Generator, StageTimeScaleChangesTheInterleaving) {
  // A heavily skewed stage rate must change the generated program order
  // somewhere (the point of the hook), while a uniform scale vector is
  // exactly equivalent to no vector at all.
  const PipelineProblem problem = MakeProblem(4, 1, 2, 8);
  GeneratorOptions uniform;
  uniform.inflight_cap = CapSchedule(4, 6, 2);
  const Schedule base = GenerateCapped(problem, uniform, "base");

  GeneratorOptions same = uniform;
  same.stage_time_scale = {1.0, 1.0, 1.0, 1.0};
  EXPECT_EQ(GenerateCapped(problem, same, "base").stage_ops, base.stage_ops);

  GeneratorOptions skewed = uniform;
  skewed.stage_time_scale = {1.0, 1.0, 4.0, 1.0};
  const Schedule scaled = GenerateCapped(problem, skewed, "skewed");
  ValidateSchedule(scaled);
  EXPECT_NE(scaled.stage_ops, base.stage_ops);
}

}  // namespace
}  // namespace mepipe::sched
