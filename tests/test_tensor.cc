// Tests for the minimal tensor library (tensor/tensor, tensor/ops),
// including finite-difference checks of every backward op.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace mepipe::tensor {
namespace {

TEST(Tensor, ZerosAndFill) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.at(1, 2), 0.0f);
  t.Fill(2.5f);
  EXPECT_EQ(t.at(0, 0), 2.5f);
  t.Scale(2.0f);
  EXPECT_EQ(t.at(1, 1), 5.0f);
}

TEST(Tensor, RandnIsSeeded) {
  std::mt19937 rng1(7);
  std::mt19937 rng2(7);
  const Tensor a = Tensor::Randn({4, 4}, rng1, 1.0f);
  const Tensor b = Tensor::Randn({4, 4}, rng2, 1.0f);
  EXPECT_EQ(Tensor::MaxAbsDiff(a, b), 0.0f);
}

TEST(Tensor, RowSliceAndAppend) {
  Tensor t({3, 2});
  for (std::int64_t i = 0; i < 3; ++i) {
    t.at(i, 0) = static_cast<float>(i);
    t.at(i, 1) = static_cast<float>(10 + i);
  }
  const Tensor mid = t.RowSlice(1, 3);
  EXPECT_EQ(mid.dim(0), 2);
  EXPECT_EQ(mid.at(0, 1), 11.0f);
  Tensor grown({0, 2});
  grown.AppendRows(t.RowSlice(0, 1));
  grown.AppendRows(t.RowSlice(1, 3));
  EXPECT_EQ(grown.dim(0), 3);
  EXPECT_EQ(Tensor::MaxAbsDiff(grown, t), 0.0f);
}

TEST(Tensor, AxpyAndAdd) {
  Tensor a({2});
  a.Fill(1.0f);
  Tensor b({2});
  b.Fill(3.0f);
  a.Axpy(2.0f, b);
  EXPECT_EQ(a.at(0), 7.0f);
  EXPECT_THROW(a.Add(Tensor({3})), CheckError);
}

TEST(Ops, MatMulAgainstHand) {
  Tensor a({2, 2});
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  Tensor b({2, 2});
  b.at(0, 0) = 5;
  b.at(0, 1) = 6;
  b.at(1, 0) = 7;
  b.at(1, 1) = 8;
  const Tensor c = MatMul(a, b);
  EXPECT_EQ(c.at(0, 0), 19);
  EXPECT_EQ(c.at(0, 1), 22);
  EXPECT_EQ(c.at(1, 0), 43);
  EXPECT_EQ(c.at(1, 1), 50);
}

TEST(Ops, TransposedVariantsAgree) {
  std::mt19937 rng(3);
  const Tensor a = Tensor::Randn({4, 3}, rng, 1.0f);
  const Tensor b = Tensor::Randn({4, 5}, rng, 1.0f);
  // MatMulTa(a, b) == aᵀ·b.
  Tensor at({3, 4});
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 3; ++j) {
      at.at(j, i) = a.at(i, j);
    }
  }
  EXPECT_LT(Tensor::MaxAbsDiff(MatMulTa(a, b), MatMul(at, b)), 1e-5f);
  // MatMulTb(x, w) == x·wᵀ.
  const Tensor x = Tensor::Randn({2, 5}, rng, 1.0f);
  const Tensor w = Tensor::Randn({3, 5}, rng, 1.0f);
  Tensor wt({5, 3});
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 5; ++j) {
      wt.at(j, i) = w.at(i, j);
    }
  }
  EXPECT_LT(Tensor::MaxAbsDiff(MatMulTb(x, w), MatMul(x, wt)), 1e-5f);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  std::mt19937 rng(5);
  const Tensor scores = Tensor::Randn({3, 7}, rng, 2.0f);
  const Tensor probs = SoftmaxRows(scores);
  for (std::int64_t i = 0; i < 3; ++i) {
    double sum = 0;
    for (std::int64_t j = 0; j < 7; ++j) {
      EXPECT_GE(probs.at(i, j), 0.0f);
      sum += probs.at(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Ops, EmbedRoundTrip) {
  std::mt19937 rng(9);
  const Tensor table = Tensor::Randn({10, 4}, rng, 1.0f);
  const std::vector<std::int64_t> ids = {3, 7, 3};
  const Tensor out = Embed(table, ids);
  EXPECT_EQ(out.at(0, 2), table.at(3, 2));
  EXPECT_EQ(out.at(1, 0), table.at(7, 0));
  Tensor dtable = Tensor::Zeros({10, 4});
  Tensor dy({3, 4});
  dy.Fill(1.0f);
  EmbedBackward(ids, dy, dtable);
  EXPECT_EQ(dtable.at(3, 0), 2.0f);  // id 3 appears twice
  EXPECT_EQ(dtable.at(7, 0), 1.0f);
  EXPECT_EQ(dtable.at(0, 0), 0.0f);
}

TEST(Ops, CrossEntropyOfUniformLogits) {
  Tensor logits({2, 4});
  const auto result = CrossEntropy(logits, {1, 2});
  EXPECT_NEAR(result.loss, std::log(4.0), 1e-5);
  // dlogits rows sum to zero.
  for (std::int64_t i = 0; i < 2; ++i) {
    double sum = 0;
    for (std::int64_t j = 0; j < 4; ++j) {
      sum += result.dlogits.at(i, j);
    }
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

// --- finite-difference checks -------------------------------------------------

// Central-difference derivative of a scalar function of one tensor entry.
template <typename LossFn>
double NumericalGrad(Tensor& x, std::int64_t index, LossFn loss, float eps = 1e-3f) {
  const float saved = x.at(index);
  x.at(index) = saved + eps;
  const double hi = loss();
  x.at(index) = saved - eps;
  const double lo = loss();
  x.at(index) = saved;
  return (hi - lo) / (2.0 * eps);
}

TEST(FiniteDiff, Silu) {
  std::mt19937 rng(11);
  Tensor x = Tensor::Randn({3, 3}, rng, 1.0f);
  Tensor dy = Tensor::Randn({3, 3}, rng, 1.0f);
  const Tensor dx = SiluBackward(x, dy);
  auto loss = [&] {
    const Tensor y = Silu(x);
    double sum = 0;
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      sum += static_cast<double>(y.at(i)) * dy.at(i);
    }
    return sum;
  };
  for (std::int64_t i : {0, 4, 8}) {
    EXPECT_NEAR(dx.at(i), NumericalGrad(x, i, loss), 2e-3) << i;
  }
}

TEST(FiniteDiff, RmsNorm) {
  std::mt19937 rng(13);
  Tensor x = Tensor::Randn({2, 6}, rng, 1.0f);
  Tensor w = Tensor::Randn({6}, rng, 0.5f);
  w.at(0) += 1.0f;
  Tensor dy = Tensor::Randn({2, 6}, rng, 1.0f);
  const auto fwd = RmsNorm(x, w);
  const auto grads = RmsNormBackward(x, w, fwd.inv_rms, dy);
  auto loss = [&] {
    const Tensor y = RmsNorm(x, w).y;
    double sum = 0;
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      sum += static_cast<double>(y.at(i)) * dy.at(i);
    }
    return sum;
  };
  for (std::int64_t i : {0, 5, 7, 11}) {
    EXPECT_NEAR(grads.dx.at(i), NumericalGrad(x, i, loss), 3e-3) << "dx " << i;
  }
  auto loss_w = [&] {
    const Tensor y = RmsNorm(x, w).y;
    double sum = 0;
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      sum += static_cast<double>(y.at(i)) * dy.at(i);
    }
    return sum;
  };
  for (std::int64_t i : {0, 3}) {
    EXPECT_NEAR(grads.dw.at(i), NumericalGrad(w, i, loss_w), 3e-3) << "dw " << i;
  }
}

TEST(FiniteDiff, SoftmaxRows) {
  std::mt19937 rng(17);
  Tensor scores = Tensor::Randn({2, 5}, rng, 1.0f);
  Tensor dprobs = Tensor::Randn({2, 5}, rng, 1.0f);
  const Tensor probs = SoftmaxRows(scores);
  const Tensor dscores = SoftmaxRowsBackward(probs, dprobs);
  auto loss = [&] {
    const Tensor p = SoftmaxRows(scores);
    double sum = 0;
    for (std::int64_t i = 0; i < p.numel(); ++i) {
      sum += static_cast<double>(p.at(i)) * dprobs.at(i);
    }
    return sum;
  };
  for (std::int64_t i : {0, 4, 9}) {
    EXPECT_NEAR(dscores.at(i), NumericalGrad(scores, i, loss), 2e-3) << i;
  }
}

TEST(FiniteDiff, CrossEntropy) {
  std::mt19937 rng(19);
  Tensor logits = Tensor::Randn({3, 5}, rng, 1.0f);
  const std::vector<std::int64_t> targets = {1, 4, 0};
  const auto result = CrossEntropy(logits, targets);
  auto loss = [&] { return CrossEntropy(logits, targets).loss; };
  for (std::int64_t i : {0, 7, 14}) {
    EXPECT_NEAR(result.dlogits.at(i), NumericalGrad(logits, i, loss), 2e-3) << i;
  }
}

}  // namespace
}  // namespace mepipe::tensor
