// Tests for the §9 deployment-economics models (core/deployment).
#include "core/deployment.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "hw/cluster.h"

namespace mepipe::core {
namespace {

TEST(Reliability, PaperClaimUnderFivePercentAt1000Gpus) {
  // §9: with memory-based checkpointing recovering in minutes and MTBF
  // ~12 h per 1000 GPUs, failure cost < 5% for a thousand RTX 4090s.
  const double overhead = FailureOverheadFraction(1000);
  EXPECT_LT(overhead, 0.05);
  EXPECT_GT(overhead, 0.001);
}

TEST(Reliability, OverheadScalesWithClusterSize) {
  const double small = FailureOverheadFraction(64);
  const double large = FailureOverheadFraction(4096);
  EXPECT_LT(small, large);
  // At 64 GPUs failures are rare: overhead is almost entirely the fixed
  // checkpoint-writing fraction (10 s per 10-min interval ≈ 1.7%).
  const ReliabilityOptions defaults;
  const double checkpoint_floor =
      defaults.checkpoint_write_cost / defaults.checkpoint_interval;
  EXPECT_LT(small, checkpoint_floor + 0.002);
}

TEST(Reliability, FasterRecoveryHelps) {
  ReliabilityOptions slow;
  slow.recovery_time = 30.0 * 60.0;  // disk-based checkpointing
  const double with_slow = FailureOverheadFraction(1000, slow);
  const double with_fast = FailureOverheadFraction(1000);
  EXPECT_GT(with_slow, with_fast);
}

TEST(Reliability, RejectsBadInput) {
  EXPECT_THROW(FailureOverheadFraction(0), CheckError);
}

TEST(OperatingCost, ScalesLinearlyInTime) {
  const auto cluster = hw::Rtx4090Cluster();
  const double one_hour = OperatingCostUsd(cluster, 3600.0);
  const double two_hours = OperatingCostUsd(cluster, 7200.0);
  EXPECT_NEAR(two_hours, 2.0 * one_hour, 1e-9);
  EXPECT_GT(one_hour, 1.0);   // 64 GPUs at ~450 W are > 10 kW
  EXPECT_LT(one_hour, 50.0);  // but well under $50/h at $0.1/kWh
}

TEST(OperatingCost, Rtx4090ClusterDrawsMorePowerPerThroughput) {
  // §9: two 4090s ≈ one A100 in compute, so the 4090 fleet burns more
  // watts for the same work. Our clusters (64×4090 vs 32×A100) are
  // throughput-matched by construction (Table 9).
  const double rtx = OperatingCostUsd(hw::Rtx4090Cluster(), 3600.0);
  const double a100 = OperatingCostUsd(hw::A100Cluster(), 3600.0);
  EXPECT_GT(rtx, a100);
}

TEST(CostParity, DecadesAsInPaper) {
  // §9: "approximately 24 years for A100 clusters to achieve cost
  // parity". Our fleet/power constants land in the same decades-long
  // range — the acquisition gap dominates.
  const double years = CostParityYears(hw::Rtx4090Cluster(), hw::A100Cluster());
  EXPECT_GT(years, 10.0);
  EXPECT_LT(years, 60.0);
  EXPECT_TRUE(std::isfinite(years));
}

TEST(CostParity, InfiniteWhenCheaperAlsoUsesLessPower) {
  // A hypothetical frugal cluster that is cheaper *and* cooler never
  // reaches parity.
  hw::ClusterSpec frugal = hw::Rtx4090Cluster();
  frugal.gpu.board_power_w = 100;
  frugal.nodes = 2;
  const double years = CostParityYears(frugal, hw::A100Cluster());
  EXPECT_TRUE(std::isinf(years));
}

TEST(CostParity, ZeroWhenThereIsNoAcquisitionAdvantage) {
  // Regression: a power-hungry cluster that is *also* more expensive to
  // buy has no acquisition gap to erase. The horizon is zero — parity
  // holds from day one — never a negative number of years.
  hw::ClusterSpec pricey = hw::Rtx4090Cluster();
  pricey.gpu.server_price_usd *= 100.0;
  const double years = CostParityYears(pricey, hw::A100Cluster());
  EXPECT_DOUBLE_EQ(years, 0.0);

  // Exactly equal acquisition cost: the gap is zero, the horizon is too.
  const auto reference = hw::A100Cluster();
  hw::ClusterSpec matched = hw::Rtx4090Cluster();
  matched.gpu.server_price_usd =
      static_cast<double>(reference.nodes) * reference.gpu.server_price_usd /
      static_cast<double>(matched.nodes);
  EXPECT_DOUBLE_EQ(CostParityYears(matched, reference), 0.0);
}

TEST(CheckpointCost, BarrierPlusBandwidth) {
  CheckpointCostOptions options;  // 3 GB/s, 1s barrier
  EXPECT_DOUBLE_EQ(CheckpointWriteCost(0, options), 1.0);
  EXPECT_DOUBLE_EQ(CheckpointWriteCost(3'000'000'000, options), 2.0);
  // Monotone in the shard size.
  EXPECT_LT(CheckpointWriteCost(1'000'000'000, options),
            CheckpointWriteCost(2'000'000'000, options));
}

TEST(CheckpointCost, RejectsBadInput) {
  CheckpointCostOptions zero_bw;
  zero_bw.write_bandwidth_bytes_per_s = 0.0;
  EXPECT_THROW(CheckpointWriteCost(1'000'000, zero_bw), CheckError);
  EXPECT_THROW(CheckpointWriteCost(-1), CheckError);
}

TEST(TotalCost, AcquisitionDominatesShortHorizons) {
  const auto rtx = hw::Rtx4090Cluster();
  const double one_year = TotalCostUsd(rtx, 1.0);
  const double acquisition = rtx.nodes * rtx.gpu.server_price_usd;
  EXPECT_GT(one_year, acquisition);
  EXPECT_LT(one_year, 2.0 * acquisition);
}

}  // namespace
}  // namespace mepipe::core
