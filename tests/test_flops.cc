// Tests for the per-slice FLOPs model (model/flops).
#include "model/flops.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "model/transformer.h"

namespace mepipe::model {
namespace {

TEST(Slices, UniformPartitionExact) {
  const auto spans = UniformSlices(4096, 4);
  ASSERT_EQ(spans.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[static_cast<std::size_t>(i)].tokens, 1024);
    EXPECT_EQ(spans[static_cast<std::size_t>(i)].start, 1024 * i);
  }
}

TEST(Slices, RemainderGoesToEarlySlices) {
  const auto spans = UniformSlices(10, 3);
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].tokens, 4);
  EXPECT_EQ(spans[1].tokens, 3);
  EXPECT_EQ(spans[2].tokens, 3);
  EXPECT_EQ(spans[2].end(), 10);
}

TEST(Slices, RejectsBadArguments) {
  EXPECT_THROW(UniformSlices(4, 0), CheckError);
  EXPECT_THROW(UniformSlices(2, 4), CheckError);
}

TEST(Flops, SliceGemmIsContextIndependent) {
  const auto config = Llama13B();
  const LayerFlops early = ForwardLayerFlops(config, {0, 1024});
  const LayerFlops late = ForwardLayerFlops(config, {3072, 1024});
  EXPECT_DOUBLE_EQ(early.gemm, late.gemm);
  // Attention grows with context offset — the slice imbalance of §5.
  EXPECT_GT(late.attention, early.attention * 3);
}

TEST(Flops, SlicesSumToWhole) {
  const auto config = Llama13B();
  const LayerFlops whole = ForwardLayerFlops(config, {0, 4096});
  double gemm = 0;
  double attention = 0;
  for (const SliceSpan& span : UniformSlices(4096, 8)) {
    const LayerFlops f = ForwardLayerFlops(config, span);
    gemm += f.gemm;
    attention += f.attention;
  }
  EXPECT_NEAR(gemm, whole.gemm, whole.gemm * 1e-12);
  EXPECT_NEAR(attention, whole.attention, whole.attention * 1e-9);
}

TEST(Flops, AttentionShareIsSmallAt4k) {
  // §4.4: attention score < 10% of total computation for 7B at L=4096.
  const auto config = Llama7B();
  const LayerFlops whole = ForwardLayerFlops(config, {0, 4096});
  EXPECT_LT(whole.attention / whole.total(), 0.10);
}

TEST(Flops, WeightGradIsBalancedAcrossSlices) {
  const auto config = Llama13B();
  const Flops w0 = WeightGradLayerFlops(config, {0, 512});
  const Flops w7 = WeightGradLayerFlops(config, {3584, 512});
  EXPECT_DOUBLE_EQ(w0, w7);
}

TEST(Flops, BackwardExceedsForward) {
  const auto config = Llama13B();
  const SliceSpan span{0, 4096};
  EXPECT_GT(BackwardLayerFlops(config, span) + WeightGradLayerFlops(config, span),
            ForwardLayerFlops(config, span).total());
}

TEST(Flops, WeightGradGemmsSumToLayerGemm) {
  const auto config = Llama13B();
  const std::vector<Flops> gemms = WeightGradGemms(config, 1024);
  EXPECT_EQ(gemms.size(), 7u);
  double total = 0;
  for (const Flops f : gemms) {
    EXPECT_GT(f, 0);
    total += f;
  }
  EXPECT_NEAR(total, WeightGradLayerFlops(config, {0, 1024}), total * 1e-12);
}

TEST(Flops, TrainingFlopsMatchesSixPT) {
  // Whole-iteration model FLOPs ≈ 6 · params · tokens (+ attention).
  const auto config = Llama13B();
  const std::int64_t tokens = 128 * 4096;
  const double six_pt = 6.0 * static_cast<double>(config.total_params()) *
                        static_cast<double>(tokens);
  const double actual = TrainingFlops(config, tokens);
  EXPECT_GT(actual, 0.95 * six_pt);
  EXPECT_LT(actual, 1.25 * six_pt);
}

TEST(Flops, MfuMatchesPaperArithmetic) {
  // §7.6: Llama 13B, GBS=128, 5852 ms on 64 GPUs ⇒ ~116 TFLOPS ⇒ 35% MFU.
  const auto config = Llama13B();
  const double mfu =
      ModelFlopsUtilization(config, 128 * 4096, 5.852, 64, 330e12);
  EXPECT_NEAR(mfu, 0.35, 0.04);
}

TEST(Flops, EmbeddingIsNegligible) {
  const auto config = Llama13B();
  EXPECT_LT(ForwardEmbeddingFlops(config, 4096),
            ForwardHeadFlops(config, 4096) / 1000.0);
}

}  // namespace
}  // namespace mepipe::model
