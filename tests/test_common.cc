// Tests for the common substrate: checks, units, formatting.
#include <gtest/gtest.h>

#include "common/check.h"
#include "common/format.h"
#include "common/units.h"

namespace mepipe {
namespace {

TEST(Check, PassingConditionIsNoop) {
  EXPECT_NO_THROW(MEPIPE_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(MEPIPE_CHECK_EQ(4, 4));
  EXPECT_NO_THROW(MEPIPE_CHECK_LT(1, 2));
}

TEST(Check, FailureThrowsWithLocationAndMessage) {
  try {
    MEPIPE_CHECK_EQ(1, 2) << "custom context " << 42;
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test_common.cc"), std::string::npos);
    EXPECT_NE(what.find("custom context 42"), std::string::npos);
  }
}

TEST(Check, ComparisonVariants) {
  EXPECT_THROW(MEPIPE_CHECK_NE(3, 3), CheckError);
  EXPECT_THROW(MEPIPE_CHECK_GE(1, 2), CheckError);
  EXPECT_THROW(MEPIPE_CHECK_GT(2, 2), CheckError);
  EXPECT_THROW(MEPIPE_CHECK_LE(3, 2), CheckError);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(Milliseconds(1500), 1.5);
  EXPECT_DOUBLE_EQ(ToMilliseconds(0.25), 250.0);
  EXPECT_DOUBLE_EQ(ToMicroseconds(1e-3), 1000.0);
  EXPECT_DOUBLE_EQ(ToGiB(2 * kGiB), 2.0);
  EXPECT_DOUBLE_EQ(ToTeraflops(3.5 * kTera), 3.5);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2 * kKiB), "2.00 KiB");
  EXPECT_EQ(FormatBytes(3 * kMiB), "3.00 MiB");
  EXPECT_EQ(FormatBytes(24 * kGiB), "24.00 GiB");
}

TEST(Units, FormatSeconds) {
  EXPECT_EQ(FormatSeconds(2.0), "2.000 s");
  EXPECT_EQ(FormatSeconds(0.0123), "12.3 ms");
  EXPECT_EQ(FormatSeconds(45e-6), "45.0 us");
}

TEST(Units, FormatFlopsRate) {
  EXPECT_EQ(FormatFlopsRate(330e12), "330.0 TFLOPS");
  EXPECT_EQ(FormatFlopsRate(5e9), "5.0 GFLOPS");
}

TEST(Format, StrFormat) {
  EXPECT_EQ(StrFormat("a=%d b=%s", 3, "x"), "a=3 b=x");
  EXPECT_EQ(StrFormat("%.2f", 1.23456), "1.23");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(Format, Padding) {
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadRight("abcdef", 4), "abcd");
  EXPECT_EQ(PadLeft("7", 3), "  7");
  EXPECT_EQ(PadLeft("1234", 3), "1234");
}

TEST(Format, RenderTableAlignsColumns) {
  const std::string table = RenderTable({{"name", "value"}, {"x", "100"}, {"long-name", "2"}});
  EXPECT_NE(table.find("name       value"), std::string::npos);
  EXPECT_NE(table.find("---------  -----"), std::string::npos);
  EXPECT_NE(table.find("long-name  2"), std::string::npos);
}

TEST(Format, RenderTableRejectsRaggedRows) {
  EXPECT_THROW(RenderTable({{"a", "b"}, {"only-one"}}), CheckError);
}

}  // namespace
}  // namespace mepipe
