// Tests for the Table 3 closed forms (core/analytic) — including
// cross-checks against the discrete-event simulator under the table's
// assumptions (uniform balanced stages, zero-cost communication).
#include "core/analytic.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/svpp.h"
#include "sched/baselines.h"
#include "sched/zbv.h"
#include "sim/cost_model.h"
#include "sim/engine.h"

namespace mepipe::core {
namespace {

TEST(Analytic, DappleSmallCluster) {
  const auto result = Analyze(Method::kDapple, {8, 1, 1, 8});
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->bubble_ratio, 7.0 / 15.0, 1e-12);
  EXPECT_NEAR(result->activation_fraction, 1.0, 1e-12);
}

TEST(Analytic, DappleLargeCluster) {
  const auto result = Analyze(Method::kDapple, {8, 1, 1, 4});
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->bubble_ratio, 7.0 / 11.0, 1e-12);
  EXPECT_NEAR(result->activation_fraction, 0.5, 1e-12);
}

TEST(Analytic, Table7BubbleRatios) {
  // §7.3 Table 7: DAPPLE on Llama 13B, GBS 32, 64 GPUs.
  // (8,8,1): n=4 → 63.6%;  (8,4,2): n=8 → 46.7%;  (8,2,4): n=16 → 30.4%.
  EXPECT_NEAR(Analyze(Method::kDapple, {8, 1, 1, 4})->bubble_ratio, 0.636, 0.001);
  EXPECT_NEAR(Analyze(Method::kDapple, {8, 1, 1, 8})->bubble_ratio, 0.467, 0.001);
  EXPECT_NEAR(Analyze(Method::kDapple, {8, 1, 1, 16})->bubble_ratio, 0.304, 0.001);
}

TEST(Analytic, VppUnsupportedOnLargeClusters) {
  EXPECT_FALSE(Analyze(Method::kVpp, {8, 2, 1, 4}).has_value());
}

TEST(Analytic, VppReducesBubbleVsDapple) {
  const auto vpp = Analyze(Method::kVpp, {8, 2, 1, 8});
  const auto dapple = Analyze(Method::kDapple, {8, 1, 1, 8});
  ASSERT_TRUE(vpp && dapple);
  EXPECT_LT(vpp->bubble_ratio, dapple->bubble_ratio);
}

TEST(Analytic, TeraPipeMemoryGrowsWithMicros) {
  const auto few = Analyze(Method::kTeraPipe, {4, 1, 4, 4});
  const auto many = Analyze(Method::kTeraPipe, {4, 1, 4, 16});
  ASSERT_TRUE(few && many);
  EXPECT_LT(few->activation_fraction, many->activation_fraction);
  EXPECT_GT(few->bubble_ratio, many->bubble_ratio);
}

TEST(Analytic, SvppMemoryBound) {
  // s >= p: (v·s + p − 1) / (v·s·p).
  const auto slice_heavy = Analyze(Method::kSvpp, {4, 1, 8, 8});
  ASSERT_TRUE(slice_heavy.has_value());
  EXPECT_NEAR(slice_heavy->activation_fraction, 11.0 / 32.0, 1e-12);
  // s < p: (v·p + s − 1) / (v·s·p).
  const auto stage_heavy = Analyze(Method::kSvpp, {8, 2, 2, 8});
  ASSERT_TRUE(stage_heavy.has_value());
  EXPECT_NEAR(stage_heavy->activation_fraction, 17.0 / 32.0, 1e-12);
}

TEST(Analytic, SvppApproachesZeroBubbleWithManySlices) {
  const auto coarse = Analyze(Method::kSvpp, {8, 1, 1, 8});
  const auto fine = Analyze(Method::kSvpp, {8, 1, 64, 8});
  ASSERT_TRUE(coarse && fine);
  EXPECT_LT(fine->bubble_ratio, 0.02);
  EXPECT_LT(fine->bubble_ratio, coarse->bubble_ratio / 10);
  EXPECT_LT(fine->activation_fraction, 0.15);
}

TEST(Analytic, SvppBeatsTeraPipeMemory) {
  // Same slicing: SVPP's interleaving cuts memory vs TeraPipe's
  // all-forwards-first ordering (Figure 1).
  const AnalyticInput input{8, 1, 8, 8};
  const auto svpp = Analyze(Method::kSvpp, input);
  const auto terapipe = Analyze(Method::kTeraPipe, input);
  ASSERT_TRUE(svpp && terapipe);
  EXPECT_LT(svpp->activation_fraction, terapipe->activation_fraction / 2);
}

TEST(Analytic, SingleStageHasNoBubble) {
  for (Method m : {Method::kGPipe, Method::kDapple, Method::kTeraPipe, Method::kSvpp}) {
    const auto result = Analyze(m, {1, 1, 2, 4});
    ASSERT_TRUE(result.has_value()) << ToString(m);
    EXPECT_DOUBLE_EQ(result->bubble_ratio, 0.0) << ToString(m);
  }
}

TEST(Analytic, SingleMicroBatchWorstCase) {
  // n=1: DAPPLE's bubble is (p-1)/p — the pipeline is mostly idle.
  const auto dapple = Analyze(Method::kDapple, {8, 1, 1, 1});
  ASSERT_TRUE(dapple.has_value());
  EXPECT_NEAR(dapple->bubble_ratio, 7.0 / 8.0, 1e-12);
  // Slicing rescues it: s=8 drops the bubble below 50%.
  const auto svpp = Analyze(Method::kSvpp, {8, 1, 8, 1});
  ASSERT_TRUE(svpp.has_value());
  EXPECT_LT(svpp->bubble_ratio, 0.5);
}

TEST(Analytic, SvppDegeneratesToDappleAtS1V1) {
  for (int n : {2, 8, 32}) {
    const auto svpp = Analyze(Method::kSvpp, {8, 1, 1, n});
    const auto dapple = Analyze(Method::kDapple, {8, 1, 1, n});
    ASSERT_TRUE(svpp && dapple);
    EXPECT_DOUBLE_EQ(svpp->bubble_ratio, dapple->bubble_ratio) << n;
  }
}

TEST(Analytic, RejectsMalformedInput) {
  EXPECT_THROW(Analyze(Method::kDapple, {0, 1, 1, 1}), CheckError);
  EXPECT_THROW(Analyze(Method::kSvpp, {4, 1, 1, 0}), CheckError);
}

TEST(Analytic, ZeroBubbleLeftoversHaveNoClosedForm) {
  EXPECT_FALSE(Analyze(Method::kZb1p, {8, 1, 1, 8}).has_value());
  EXPECT_FALSE(Analyze(Method::kZbvCapped, {8, 2, 1, 8}).has_value());
}

TEST(Analytic, ZbvClosedForm) {
  // Handcrafted ZB-V: (p-1) chunk-forward units of ramp against 6n
  // chunk-op units of work; 1F1B-parity memory.
  const auto result = Analyze(Method::kZbv, {8, 2, 1, 8});
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->bubble_ratio, 7.0 / 55.0, 1e-12);
  EXPECT_NEAR(result->activation_fraction, 1.0, 1e-12);
  // n < p: the ramp cannot fill, Table 3 marks the regime unsupported
  // (same convention as VPP).
  EXPECT_FALSE(Analyze(Method::kZbv, {8, 2, 1, 4}).has_value());
}

TEST(Analytic, ZbvBeatsEveryTable3RowOnBubble) {
  const AnalyticInput input{8, 2, 1, 8};
  const auto zbv = Analyze(Method::kZbv, input);
  ASSERT_TRUE(zbv.has_value());
  for (Method m : {Method::kGPipe, Method::kDapple, Method::kVpp, Method::kHanayo}) {
    const auto other = Analyze(m, input);
    ASSERT_TRUE(other.has_value()) << ToString(m);
    EXPECT_LT(zbv->bubble_ratio, other->bubble_ratio) << ToString(m);
  }
}

// --- simulation cross-checks -------------------------------------------------
// Under Table 3's assumptions (balanced stages, zero-cost communication,
// B twice as long as F), the simulator must land on the closed forms.

struct XCase {
  Method method;
  AnalyticInput input;
};

class AnalyticVsSim : public ::testing::TestWithParam<XCase> {};

TEST_P(AnalyticVsSim, BubbleRatioMatches) {
  const XCase c = GetParam();
  const auto expected = Analyze(c.method, c.input);
  ASSERT_TRUE(expected.has_value());

  sched::Schedule schedule;
  switch (c.method) {
    case Method::kGPipe:
      schedule = sched::GPipeSchedule(c.input.p, c.input.n);
      break;
    case Method::kDapple:
      schedule = sched::OneFOneBSchedule(c.input.p, c.input.n);
      break;
    case Method::kTeraPipe:
      schedule = sched::TeraPipeSchedule(c.input.p, c.input.s, c.input.n);
      break;
    case Method::kSvpp: {
      SvppOptions options;
      options.stages = c.input.p;
      options.virtual_chunks = c.input.v;
      options.slices = c.input.s;
      options.micros = c.input.n;
      options.split_backward = false;
      schedule = GenerateSvpp(options);
      break;
    }
    case Method::kZbv: {
      sched::ZbvOptions options;
      options.transfer_time = 0.0;  // the table ignores communication
      schedule = sched::HandcraftedZbvSchedule(c.input.p, c.input.n, options);
      break;
    }
    default:
      FAIL() << "unhandled method";
  }
  // Slice/chunk ops are proportionally shorter; uniform per-op costs model
  // Table 3's balanced partitioning. Slice methods are checked in the
  // B=F regime (MEPipe always splits B/W, making B ≈ F); at B=2F the
  // Table 3 memory bound leaves no steady-state slack for the slice
  // round-trip and the bound is not jointly achievable with the bubble
  // claim — see EXPERIMENTS.md.
  const bool split_b = c.method == Method::kZbv;  // B is the dgrad half: B ≈ F, W ≈ F
  const bool slice_method = c.input.s > 1;
  const sim::UniformCostModel costs(1.0, slice_method || split_b ? 1.0 : 2.0,
                                    split_b ? 1.0 : 0.0, 0.0);
  const sim::SimResult result = Simulate(schedule, costs);
  EXPECT_NEAR(result.bubble_ratio, expected->bubble_ratio, 0.03)
      << ToString(c.method) << " p=" << c.input.p << " v=" << c.input.v << " s=" << c.input.s
      << " n=" << c.input.n;
}

INSTANTIATE_TEST_SUITE_P(
    Table3, AnalyticVsSim,
    ::testing::Values(XCase{Method::kGPipe, {4, 1, 1, 8}}, XCase{Method::kGPipe, {8, 1, 1, 4}},
                      XCase{Method::kDapple, {4, 1, 1, 8}}, XCase{Method::kDapple, {8, 1, 1, 8}},
                      XCase{Method::kDapple, {8, 1, 1, 4}},
                      XCase{Method::kTeraPipe, {4, 1, 4, 8}},
                      XCase{Method::kTeraPipe, {8, 1, 2, 4}},
                      XCase{Method::kSvpp, {4, 1, 2, 8}}, XCase{Method::kSvpp, {4, 1, 4, 8}},
                      XCase{Method::kSvpp, {8, 1, 4, 4}},
                      XCase{Method::kZbv, {4, 2, 1, 8}}, XCase{Method::kZbv, {8, 2, 1, 8}},
                      XCase{Method::kZbv, {8, 2, 1, 16}}),
    [](const auto& info) {
      const XCase& c = info.param;
      return std::string(ToString(c.method)) + "_p" + std::to_string(c.input.p) + "v" +
             std::to_string(c.input.v) + "s" + std::to_string(c.input.s) + "n" +
             std::to_string(c.input.n);
    });

}  // namespace
}  // namespace mepipe::core
