// The correctness cornerstone of slice-level scheduling: the reference
// transformer's sliced execution (KV-cache forward, reverse-order
// backward with dK/dV accumulation, deferred per-GEMM weight gradients)
// must compute exactly the gradients of whole-sequence execution.
#include "ref/ref_model.h"

#include <gtest/gtest.h>

#include <random>

#include "model/flops.h"
#include "model/slicing.h"

namespace mepipe::ref {
namespace {

std::vector<std::int64_t> RandomTokens(std::int64_t count, std::int64_t vocab,
                                       std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::int64_t> dist(0, vocab - 1);
  std::vector<std::int64_t> tokens(static_cast<std::size_t>(count));
  for (auto& t : tokens) {
    t = dist(rng);
  }
  return tokens;
}

struct Sample {
  std::vector<std::int64_t> tokens;
  std::vector<std::int64_t> targets;
};

Sample MakeSample(const RefConfig& config, std::uint32_t seed) {
  Sample sample;
  sample.tokens = RandomTokens(config.seq_len, config.vocab, seed);
  sample.targets = RandomTokens(config.seq_len, config.vocab, seed + 1);
  return sample;
}

TEST(RefModel, LossIsFiniteAndPlausible) {
  const RefConfig config;
  const RefModel model(config, 42);
  const Sample sample = MakeSample(config, 7);
  const double loss = model.Loss(sample.tokens, sample.targets);
  EXPECT_GT(loss, 0.0);
  // Near-uniform logits at init ⇒ loss ≈ log(vocab).
  EXPECT_NEAR(loss, std::log(static_cast<double>(config.vocab)), 1.0);
}

TEST(RefModel, SlicedGradientsMatchWhole) {
  // THE invariant: any slicing yields the same gradients.
  const RefConfig config;
  const RefModel model(config, 42);
  const Sample sample = MakeSample(config, 7);
  const auto whole = model.TrainStepWhole(sample.tokens, sample.targets);
  for (int slices : {2, 4, 8}) {
    const auto spans = model::UniformSlices(config.seq_len, slices);
    const auto sliced =
        model.TrainStepSliced(sample.tokens, sample.targets, spans, /*defer=*/false);
    EXPECT_NEAR(sliced.loss, whole.loss, 1e-6) << "s=" << slices;
    EXPECT_LT(Weights::MaxAbsDiff(sliced.grads, whole.grads), 1e-4f) << "s=" << slices;
  }
}

TEST(RefModel, DeferredWeightGradsMatchInline) {
  // §5's B/W split: stashing per-GEMM weight-gradient work and running it
  // later changes nothing numerically.
  const RefConfig config;
  const RefModel model(config, 43);
  const Sample sample = MakeSample(config, 11);
  const auto spans = model::UniformSlices(config.seq_len, 4);
  const auto inline_w =
      model.TrainStepSliced(sample.tokens, sample.targets, spans, /*defer=*/false);
  const auto deferred =
      model.TrainStepSliced(sample.tokens, sample.targets, spans, /*defer=*/true);
  EXPECT_DOUBLE_EQ(inline_w.loss, deferred.loss);
  EXPECT_LT(Weights::MaxAbsDiff(inline_w.grads, deferred.grads), 1e-6f);
}

TEST(RefModel, NonUniformSlicesAlsoMatch) {
  const RefConfig config;
  const RefModel model(config, 44);
  const Sample sample = MakeSample(config, 13);
  const auto whole = model.TrainStepWhole(sample.tokens, sample.targets);
  const std::vector<model::SliceSpan> jagged = {{0, 5}, {5, 2}, {7, 9}};
  const auto sliced =
      model.TrainStepSliced(sample.tokens, sample.targets, jagged, /*defer=*/true);
  EXPECT_NEAR(sliced.loss, whole.loss, 1e-6);
  EXPECT_LT(Weights::MaxAbsDiff(sliced.grads, whole.grads), 1e-4f);
}

TEST(RefModel, SingleTokenSlices) {
  // The extreme: token-level slicing (TeraPipe's original granularity).
  RefConfig config;
  config.seq_len = 6;
  const RefModel model(config, 45);
  const Sample sample = MakeSample(config, 17);
  const auto whole = model.TrainStepWhole(sample.tokens, sample.targets);
  const auto spans = model::UniformSlices(config.seq_len, config.seq_len);
  const auto sliced =
      model.TrainStepSliced(sample.tokens, sample.targets, spans, /*defer=*/false);
  EXPECT_LT(Weights::MaxAbsDiff(sliced.grads, whole.grads), 1e-4f);
}

TEST(RefModel, GradientsMatchFiniteDifferences) {
  // Absolute correctness anchor: analytic gradients vs central
  // differences of the loss, on a selection of parameters in every
  // weight family.
  RefConfig config;
  config.hidden = 16;
  config.ffn = 24;
  config.layers = 2;
  config.heads = 2;
  config.vocab = 17;
  config.seq_len = 8;
  RefModel model(config, 46);
  const Sample sample = MakeSample(config, 19);
  const auto step = model.TrainStepWhole(sample.tokens, sample.targets);

  auto check = [&](tensor::Tensor& param, const tensor::Tensor& grad, std::int64_t index,
                   const char* name) {
    const float eps = 1e-2f;
    const float saved = param.at(index);
    param.at(index) = saved + eps;
    const double hi = model.Loss(sample.tokens, sample.targets);
    param.at(index) = saved - eps;
    const double lo = model.Loss(sample.tokens, sample.targets);
    param.at(index) = saved;
    const double numeric = (hi - lo) / (2.0 * eps);
    EXPECT_NEAR(grad.at(index), numeric, 5e-3) << name << "[" << index << "]";
  };

  Weights& w = model.weights();
  check(w.head, step.grads.head, 3, "head");
  check(w.embedding, step.grads.embedding,
        sample.tokens[0] * config.hidden + 1, "embedding");
  check(w.final_norm, step.grads.final_norm, 2, "final_norm");
  check(w.layers[0].wq, step.grads.layers[0].wq, 5, "wq");
  check(w.layers[0].wk, step.grads.layers[0].wk, 6, "wk");
  check(w.layers[0].wv, step.grads.layers[0].wv, 7, "wv");
  check(w.layers[0].wo, step.grads.layers[0].wo, 8, "wo");
  check(w.layers[1].wgate, step.grads.layers[1].wgate, 9, "wgate");
  check(w.layers[1].wup, step.grads.layers[1].wup, 10, "wup");
  check(w.layers[1].wdown, step.grads.layers[1].wdown, 11, "wdown");
  check(w.layers[1].norm_attn, step.grads.layers[1].norm_attn, 1, "norm_attn");
  check(w.layers[0].norm_mlp, step.grads.layers[0].norm_mlp, 0, "norm_mlp");
}

TEST(RefModel, TrainingReducesLoss) {
  // A few SGD steps on a fixed batch must reduce the loss — end-to-end
  // sanity that the gradients point downhill.
  RefConfig config;
  config.seq_len = 12;
  RefModel model(config, 47);
  const Sample sample = MakeSample(config, 23);
  const auto spans = model::UniformSlices(config.seq_len, 3);

  double initial = 0;
  double final_loss = 0;
  for (int step = 0; step < 8; ++step) {
    const auto result =
        model.TrainStepSliced(sample.tokens, sample.targets, spans, /*defer=*/true);
    if (step == 0) {
      initial = result.loss;
    }
    final_loss = result.loss;
    // SGD update with a small LR.
    Weights& w = model.weights();
    const float lr = 0.1f;
    w.embedding.Axpy(-lr, result.grads.embedding);
    w.final_norm.Axpy(-lr, result.grads.final_norm);
    w.head.Axpy(-lr, result.grads.head);
    for (std::size_t l = 0; l < w.layers.size(); ++l) {
      w.layers[l].wq.Axpy(-lr, result.grads.layers[l].wq);
      w.layers[l].wk.Axpy(-lr, result.grads.layers[l].wk);
      w.layers[l].wv.Axpy(-lr, result.grads.layers[l].wv);
      w.layers[l].wo.Axpy(-lr, result.grads.layers[l].wo);
      w.layers[l].wgate.Axpy(-lr, result.grads.layers[l].wgate);
      w.layers[l].wup.Axpy(-lr, result.grads.layers[l].wup);
      w.layers[l].wdown.Axpy(-lr, result.grads.layers[l].wdown);
      w.layers[l].norm_attn.Axpy(-lr, result.grads.layers[l].norm_attn);
      w.layers[l].norm_mlp.Axpy(-lr, result.grads.layers[l].norm_mlp);
    }
  }
  // Per-step monotonicity is not guaranteed for SGD; meaningful overall
  // descent on a fixed batch is.
  EXPECT_LT(final_loss, 0.8 * initial);
}

// Property sweep: slicing never changes gradients, across seeds and
// slice counts.
class SliceEquivalence
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>> {};

TEST_P(SliceEquivalence, GradsMatchWhole) {
  const auto [seed, slices] = GetParam();
  const RefConfig config;
  const RefModel model(config, seed);
  const Sample sample = MakeSample(config, seed * 31 + 1);
  const auto whole = model.TrainStepWhole(sample.tokens, sample.targets);
  const auto sliced = model.TrainStepSliced(
      sample.tokens, sample.targets, model::UniformSlices(config.seq_len, slices),
      /*defer=*/(seed % 2) == 0);
  EXPECT_LT(Weights::MaxAbsDiff(sliced.grads, whole.grads), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SliceEquivalence,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u),
                                            ::testing::Values(2, 4, 8)),
                         [](const auto& info) {
                           return "seed" + std::to_string(std::get<0>(info.param)) + "s" +
                                  std::to_string(std::get<1>(info.param));
                         });

}  // namespace
}  // namespace mepipe::ref
