// Differential, property, and golden tests for the budgeted schedule
// synthesizer (sched/synth.h): the budget extremes must recover the
// handcrafted zoo, every synthesized schedule must satisfy the full
// invariant battery under its declared budget, and the ZBV-shape lower
// bound must be met exactly.
#include "sched/synth.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "sched/baselines.h"
#include "sched/serialize.h"
#include "sched/validate.h"
#include "sched/zbv.h"
#include "sim/cost_model.h"
#include "sim/engine.h"

namespace mepipe::sched {
namespace {

PipelineProblem MakeProblem(int p, int v, int n, bool split,
                            ChunkPlacement placement = ChunkPlacement::kRoundRobin) {
  PipelineProblem problem;
  problem.stages = p;
  problem.virtual_chunks = v;
  problem.micros = n;
  problem.split_backward = split;
  problem.placement = placement;
  return problem;
}

// Uniform-cost ZBV shape: v=2, split backward, V-shape placement,
// F = B = W = 1, zero transfer.
SynthOptions ZbvShapeOptions(int p, int n) {
  SynthOptions options;
  options.transfer_time = 0.0;
  options.budget = SynthZbvBudget(p, n);
  return options;
}

TEST(Synth, ZbvExtremeReachesChunkChainBound) {
  // Under uniform costs the admissible bound is exactly 6n+(p-1)
  // chunk-op units and the synthesizer must land on it.
  for (int p : {4, 8}) {
    for (int n : {p, 2 * p, 16}) {
      const PipelineProblem problem = MakeProblem(p, 2, n, true, ChunkPlacement::kVShape);
      const SynthOptions options = ZbvShapeOptions(p, n);
      EXPECT_NEAR(SynthChunkChainLowerBound(problem, options), 6.0 * n + (p - 1), 1e-9)
          << "p=" << p << " n=" << n;
      SynthReport report;
      const Schedule schedule = SynthesizeSchedule(problem, options, &report);
      EXPECT_NEAR(report.makespan, 6.0 * n + (p - 1), 1e-9) << "p=" << p << " n=" << n;
      EXPECT_TRUE(report.reached_lower_bound) << "p=" << p << " n=" << n;
      const sim::UniformCostModel costs(1.0, 1.0, 1.0, 0.0);
      EXPECT_NEAR(Simulate(schedule, costs).makespan, 6.0 * n + (p - 1), 1e-9)
          << "p=" << p << " n=" << n;
    }
  }
}

TEST(Synth, ZbvExtremeSchedulesTheHandcraftedOpMultiset) {
  for (int p : {4, 8}) {
    const int n = 2 * p;
    const Schedule synth = SynthesizeSchedule(MakeProblem(p, 2, n, true, ChunkPlacement::kVShape),
                                              ZbvShapeOptions(p, n));
    const Schedule hand = ZbvSchedule(p, n);
    for (int stage = 0; stage < p; ++stage) {
      std::vector<OpId> a = synth.stage_ops[static_cast<std::size_t>(stage)];
      std::vector<OpId> b = hand.stage_ops[static_cast<std::size_t>(stage)];
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      EXPECT_EQ(a, b) << "p=" << p << " stage=" << stage;
    }
  }
}

TEST(Synth, OneFOneBExtremeMatchesHandcrafted) {
  // v=1, fused backward, budget_i = max(1, min(n, p-i)): the composed
  // block is 1F1B itself — same makespan under 1F1B's cost convention
  // (fused B costs b+w) and the same warmup memory profile.
  for (int p : {4, 8}) {
    for (int n : {p, 2 * p}) {
      SynthOptions options;
      options.b_time = 2.0;  // fused B = activation-gradient + weight halves
      options.transfer_time = 0.0;
      options.budget = SynthOneFOneBBudget(p, n);
      const Schedule synth = SynthesizeSchedule(MakeProblem(p, 1, n, false), options);
      const Schedule hand = OneFOneBSchedule(p, n);
      const sim::UniformCostModel costs(1.0, 2.0, 1.0, 0.0);
      EXPECT_NEAR(Simulate(synth, costs).makespan, Simulate(hand, costs).makespan, 1e-9)
          << "p=" << p << " n=" << n;
      for (int stage = 0; stage < p; ++stage) {
        EXPECT_LE(PeakRetainedForwards(synth, stage),
                  options.budget[static_cast<std::size_t>(stage)])
            << "p=" << p << " n=" << n << " stage=" << stage;
      }
    }
  }
}

TEST(Synth, VppClassBudgetTracksHandcrafted) {
  // v=2 round-robin fused under VPP's own memory profile: the composed
  // schedule must stay within a few chunk-op units of the handcrafted
  // interleaving (it is not required to beat a construction that exists
  // exactly for this budget, only to be competitive at it).
  for (int p : {4, 8}) {
    const int n = 2 * p;
    const Schedule hand = VppSchedule(p, 2, n);
    SynthOptions options;
    options.b_time = 2.0;
    options.transfer_time = 0.0;
    options.budget.resize(static_cast<std::size_t>(p));
    for (int stage = 0; stage < p; ++stage) {
      options.budget[static_cast<std::size_t>(stage)] =
          std::max(2, PeakRetainedForwards(hand, stage));
    }
    const Schedule synth = SynthesizeSchedule(MakeProblem(p, 2, n, false), options);
    const sim::UniformCostModel costs(1.0, 2.0, 1.0, 0.0);
    const double hand_makespan = Simulate(hand, costs).makespan;
    EXPECT_LE(Simulate(synth, costs).makespan, hand_makespan * 1.05 + 1e-9) << "p=" << p;
    for (int stage = 0; stage < p; ++stage) {
      EXPECT_LE(PeakRetainedForwards(synth, stage),
                options.budget[static_cast<std::size_t>(stage)])
          << "p=" << p << " stage=" << stage;
    }
  }
}

TEST(Synth, StrictlyDominatesCappedGeneratorOnTheFrontier) {
  // The acceptance pin: at p=8, n=8 and 1F1B-parity memory (2p = 16
  // retained chunk-forwards — ZbvCappedSchedule's honest peak, since its
  // deferred Ws hold every forward past its B) the synthesizer reaches
  // the 6n+(p-1) bound while the capped list-scheduler approximation is
  // far above it: equal memory, strictly smaller bubble.
  const int p = 8;
  const int n = 8;
  const PipelineProblem problem = MakeProblem(p, 2, n, true, ChunkPlacement::kVShape);
  const Schedule synth = SynthesizeSchedule(problem, ZbvShapeOptions(p, n));
  const Schedule capped = ZbvCappedSchedule(p, n);
  const sim::UniformCostModel costs(1.0, 1.0, 1.0, 0.0);
  sim::EngineOptions fill_whole;
  fill_whole.wgrad_mode = sim::WgradMode::kFillWhole;  // how the runner executes it
  const sim::SimResult synth_result = Simulate(synth, costs);
  const sim::SimResult capped_result = Simulate(capped, costs, fill_whole);
  int synth_peak = 0;
  for (int stage = 0; stage < p; ++stage) {
    synth_peak = std::max(synth_peak, PeakRetainedForwards(synth, stage));
  }
  EXPECT_LE(synth_peak, ZbvMaxRetainedForwards(p, n));
  EXPECT_LT(synth_result.makespan, capped_result.makespan - 1e-9);
  EXPECT_LT(synth_result.bubble_ratio, capped_result.bubble_ratio - 0.05);
}

TEST(Synth, RejectsMalformedInputs) {
  const PipelineProblem problem = MakeProblem(4, 2, 8, true, ChunkPlacement::kVShape);
  SynthOptions bad_arity;
  bad_arity.budget = {4, 4};
  EXPECT_THROW(SynthesizeSchedule(problem, bad_arity), CheckError);
  SynthOptions below_floor;
  below_floor.budget = {4, 4, 1, 4};  // entry below the v=2 floor
  EXPECT_THROW(SynthesizeSchedule(problem, below_floor), CheckError);
  SynthOptions zero_f;
  zero_f.f_time = 0.0;
  EXPECT_THROW(SynthesizeSchedule(problem, zero_f), CheckError);
  SynthOptions negative_transfer;
  negative_transfer.transfer_time = -0.1;
  EXPECT_THROW(SynthesizeSchedule(problem, negative_transfer), CheckError);
  PipelineProblem sliced = MakeProblem(4, 1, 8, true);
  sliced.slices = 2;
  EXPECT_THROW(SynthesizeSchedule(sliced), CheckError);
}

// ---- seeded property fuzz ---------------------------------------------------
// Every synthesized schedule over randomized shapes and budgets must
// pass the full invariant battery, with its declared per-stage budget as
// the retained-forward cap.
TEST(SynthFuzz, RandomShapesPassEveryInvariantUnderBudget) {
  SplitMixRng rng(0x5eedc0de2025ull);
  for (int trial = 0; trial < 48; ++trial) {
    const int p = 2 + static_cast<int>(rng.NextU64() % 7);   // 2..8
    const int v = 1 + static_cast<int>(rng.NextU64() % 3);   // 1..3
    const int n = 1 + static_cast<int>(rng.NextU64() % 12);  // 1..12
    const bool split = rng.NextU64() & 1;
    const ChunkPlacement placement = (v == 2 && (rng.NextU64() & 1))
                                         ? ChunkPlacement::kVShape
                                         : ChunkPlacement::kRoundRobin;
    const PipelineProblem problem = MakeProblem(p, v, n, split, placement);

    SynthOptions options;
    options.transfer_time = (rng.NextU64() & 1) ? 0.05 : 0.0;
    if (!split) {
      options.b_time = 2.0;
    }
    const bool capped = rng.NextU64() % 4 != 0;  // 1 in 4 trials uncapped
    if (capped) {
      options.budget.resize(static_cast<std::size_t>(p));
      const int span = std::max(1, n * v - v + 1);
      for (int stage = 0; stage < p; ++stage) {
        options.budget[static_cast<std::size_t>(stage)] =
            v + static_cast<int>(rng.NextU64() % static_cast<std::uint64_t>(span));
      }
    }
    SCOPED_TRACE("trial " + std::to_string(trial) + ": p=" + std::to_string(p) +
                 " v=" + std::to_string(v) + " n=" + std::to_string(n) +
                 " split=" + std::to_string(split) +
                 " vshape=" + std::to_string(placement == ChunkPlacement::kVShape) +
                 " capped=" + std::to_string(capped));

    SynthReport report;
    const Schedule schedule = SynthesizeSchedule(problem, options, &report);
    EXPECT_GE(report.leaves_evaluated, 1);
    EXPECT_EQ(report.warmup.size(), static_cast<std::size_t>(p));

    InvariantOptions invariants;
    invariants.costs.f_time = options.f_time;
    invariants.costs.b_time = options.b_time;
    invariants.costs.w_time = options.w_time;
    invariants.costs.transfer_time = options.transfer_time;
    if (capped) {
      invariants.retained_cap = options.budget;
      for (int stage = 0; stage < p; ++stage) {
        EXPECT_LE(PeakRetainedForwards(schedule, stage),
                  options.budget[static_cast<std::size_t>(stage)])
            << "stage " << stage;
      }
    }
    const InvariantReport invariant_report = CheckScheduleInvariants(schedule, invariants);
    EXPECT_TRUE(invariant_report.ok()) << invariant_report.Summary();
  }
}

// ---- golden snapshots -------------------------------------------------------
// The synthesizer is deterministic; its serialized output at the three
// budget extremes for the canonical p=4, n=8 config is pinned
// byte-for-byte (see tests/golden/README.md for regeneration).

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MEPIPE_CHECK(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct GoldenCase {
  const char* name;  // file stem and test label
  PipelineProblem problem;
  SynthOptions options;
};

std::vector<GoldenCase> GoldenCases() {
  const int p = 4;
  const int n = 8;
  GoldenCase onefoneb{"synth_1f1b_p4_n8", MakeProblem(p, 1, n, false), {}};
  onefoneb.options.b_time = 2.0;
  onefoneb.options.budget = SynthOneFOneBBudget(p, n);
  GoldenCase vpp{"synth_vpp_p4_n8", MakeProblem(p, 2, n, false), {}};
  vpp.options.b_time = 2.0;
  const Schedule hand_vpp = VppSchedule(p, 2, n);
  vpp.options.budget.resize(static_cast<std::size_t>(p));
  for (int stage = 0; stage < p; ++stage) {
    vpp.options.budget[static_cast<std::size_t>(stage)] =
        std::max(2, PeakRetainedForwards(hand_vpp, stage));
  }
  GoldenCase zbv{"synth_zbv_p4_n8", MakeProblem(p, 2, n, true, ChunkPlacement::kVShape), {}};
  zbv.options.budget = SynthZbvBudget(p, n);
  return {onefoneb, vpp, zbv};
}

class SynthGolden : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(SynthGolden, SnapshotIsByteStable) {
  const GoldenCase& c = GetParam();
  const std::string path =
      std::string(MEPIPE_TESTS_DIR) + "/golden/" + c.name + ".txt";
  const std::string golden = ReadFileOrDie(path);
  const Schedule schedule = SynthesizeSchedule(c.problem, c.options);
  EXPECT_EQ(SerializeSchedule(schedule), golden);
  const Schedule parsed = ParseSchedule(golden);
  EXPECT_EQ(SerializeSchedule(parsed), golden);
  EXPECT_EQ(parsed.stage_ops, schedule.stage_ops);
}

INSTANTIATE_TEST_SUITE_P(Extremes, SynthGolden, ::testing::ValuesIn(GoldenCases()),
                         [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace mepipe::sched
