// Tests for the trace renderers (trace/ascii, trace/chrome_trace,
// trace/csv).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/check.h"
#include "sched/baselines.h"
#include "sim/cost_model.h"
#include "sim/engine.h"
#include "trace/ascii.h"
#include "trace/chrome_trace.h"
#include "trace/csv.h"

namespace mepipe::trace {
namespace {

sim::SimResult SampleRun() {
  const auto schedule = sched::OneFOneBSchedule(3, 4);
  const sim::UniformCostModel costs(1.0, 2.0, 0.0, 0.1);
  return Simulate(schedule, costs);
}

TEST(Ascii, RenderScheduleOrdersListsEveryStage) {
  const auto schedule = sched::OneFOneBSchedule(3, 2);
  const std::string text = RenderScheduleOrders(schedule);
  EXPECT_NE(text.find("stage 0 |"), std::string::npos);
  EXPECT_NE(text.find("stage 2 |"), std::string::npos);
  EXPECT_NE(text.find("F0.0"), std::string::npos);
  EXPECT_NE(text.find("B1.0"), std::string::npos);
}

TEST(Ascii, ChunkAnnotationOnlyWhenVirtual) {
  const auto plain = RenderScheduleOrders(sched::OneFOneBSchedule(2, 2));
  EXPECT_EQ(plain.find('@'), std::string::npos);
  const auto vpp = RenderScheduleOrders(sched::VppSchedule(2, 2, 2));
  EXPECT_NE(vpp.find("@1"), std::string::npos);
}

TEST(Ascii, TimelineRowsAndLegend) {
  const std::string text = RenderTimeline(SampleRun(), 3, 60);
  EXPECT_NE(text.find("stage 0 |"), std::string::npos);
  EXPECT_NE(text.find("legend:"), std::string::npos);
  // Forward cells are digits, backward cells letters.
  EXPECT_NE(text.find('0'), std::string::npos);
  EXPECT_NE(text.find('a'), std::string::npos);
}

TEST(Ascii, EmptyTimeline) {
  sim::SimResult empty;
  EXPECT_EQ(RenderTimeline(empty, 2, 40), "(empty timeline)\n");
}

TEST(ChromeTrace, ValidJsonShape) {
  const std::string json = ToChromeTraceJson(SampleRun());
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);  // transfer track
  // Balanced braces on every line; crude but effective.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ChromeTrace, WritesFile) {
  const std::string path = ::testing::TempDir() + "/mepipe_trace.json";
  WriteChromeTrace(SampleRun(), path);
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string first_line;
  std::getline(file, first_line);
  EXPECT_EQ(first_line, "[");
  std::remove(path.c_str());
}

TEST(Csv, RoundTrip) {
  CsvWriter csv({"a", "b"});
  csv.AddRow({"1", "2"});
  csv.AddRow({"with,comma", "with\"quote"});
  const std::string text = csv.ToString();
  EXPECT_EQ(text, "a,b\n1,2\n\"with,comma\",\"with\"\"quote\"\n");
}

TEST(Csv, RejectsRaggedRow) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.AddRow({"only-one"}), CheckError);
}

TEST(Csv, WritesFile) {
  const std::string path = ::testing::TempDir() + "/mepipe_table.csv";
  CsvWriter csv({"x"});
  csv.AddRow({"42"});
  csv.WriteFile(path);
  std::ifstream file(path);
  std::string line;
  std::getline(file, line);
  EXPECT_EQ(line, "x");
  std::remove(path.c_str());
}

TEST(Ascii, TimelineStageLabels) {
  const std::string text =
      RenderTimeline(SampleRun(), 3, 60, {"x1.00 units 8->9", "", "x2.00 units 8->4"});
  EXPECT_NE(text.find("| x1.00 units 8->9\n"), std::string::npos);
  EXPECT_NE(text.find("| x2.00 units 8->4\n"), std::string::npos);
  // The empty label leaves stage 1's row unannotated, and extra labels
  // beyond the stage count are ignored.
  EXPECT_EQ(text.find("stage 1 | x"), std::string::npos);
  const std::string extra = RenderTimeline(SampleRun(), 3, 60, {"a", "b", "c", "ignored"});
  EXPECT_EQ(extra.find("ignored"), std::string::npos);
  // No labels at all reproduces the plain rendering.
  EXPECT_EQ(RenderTimeline(SampleRun(), 3, 60, {}), RenderTimeline(SampleRun(), 3, 60));
}

TEST(ChromeTrace, StageLabelMetadataEvents) {
  const std::string json = ToChromeTraceJson(SampleRun(), {"slow \"x2\"", "", "ok"});
  EXPECT_NE(json.find("\"name\": \"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\\\"x2\\\""), std::string::npos);  // quotes escaped
  EXPECT_NE(json.find("\"tid\": 2, \"args\": {\"name\": \"ok\"}"), std::string::npos);
  // The empty label is skipped entirely.
  EXPECT_EQ(json.find("\"tid\": 1, \"args\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  // No labels reduces to the plain export.
  EXPECT_EQ(ToChromeTraceJson(SampleRun(), {}), ToChromeTraceJson(SampleRun()));
}

TEST(Csv, StageMetricsExportsIdleBreakdown) {
  const sim::SimResult result = SampleRun();
  const std::string csv = StageMetricsCsv(result);
  EXPECT_NE(csv.find("stage,busy_s,warmup_idle_s,steady_idle_s,drain_idle_s,bubble_ratio,"
                     "peak_activation_bytes,budget_violations"),
            std::string::npos);
  // One header + one row per stage.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'),
            static_cast<std::ptrdiff_t>(result.stages.size()) + 1);
  EXPECT_EQ(csv.find("nan"), std::string::npos);
}

TEST(Csv, WriteStageMetricsFile) {
  const std::string path = ::testing::TempDir() + "/mepipe_stage_metrics.csv";
  WriteStageMetricsCsv(SampleRun(), path);
  std::ifstream file(path);
  std::string header;
  std::getline(file, header);
  EXPECT_EQ(header.rfind("stage,busy_s", 0), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mepipe::trace
