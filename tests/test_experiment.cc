// Tests for the §7.1 measurement-protocol harness (core/experiment).
#include "core/experiment.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "hw/cluster.h"
#include "model/transformer.h"

namespace mepipe::core {
namespace {

Strategy PaperMepipe13B() {
  Strategy s;
  s.method = Method::kSvpp;
  s.pp = 8;
  s.dp = 8;
  s.spp = 4;
  return s;
}

TEST(Experiment, TailStatisticsArePlausible) {
  ExperimentOptions options;
  options.iterations = 20;
  options.tail = 5;
  const ExperimentReport report =
      RunExperiment(model::Llama13B(), PaperMepipe13B(), hw::Rtx4090Cluster(), 64, options);
  ASSERT_TRUE(report.feasible) << report.note;
  EXPECT_EQ(report.iterations, 20);
  EXPECT_EQ(report.all_iterations.size(), 20u);
  EXPECT_GT(report.mean_iteration, 0.0);
  EXPECT_GT(report.stddev_iteration, 0.0);
  EXPECT_LE(report.min_iteration, report.mean_iteration);
  EXPECT_GE(report.max_iteration, report.mean_iteration);
  // Jitter of ~3% per op averages out at iteration scale.
  EXPECT_LT(report.stddev_iteration / report.mean_iteration, 0.05);
}

TEST(Experiment, MeanTracksDeterministicRun) {
  ExperimentOptions options;
  options.iterations = 12;
  options.tail = 4;
  const auto report =
      RunExperiment(model::Llama13B(), PaperMepipe13B(), hw::Rtx4090Cluster(), 64, options);
  const auto deterministic =
      SimulateIteration(model::Llama13B(), PaperMepipe13B(), hw::Rtx4090Cluster(), 64);
  ASSERT_TRUE(report.feasible);
  EXPECT_NEAR(report.mean_iteration, deterministic.iteration_time,
              deterministic.iteration_time * 0.05);
}

TEST(Experiment, Deterministic) {
  ExperimentOptions options;
  options.iterations = 6;
  options.tail = 3;
  options.seed = 77;
  const auto a =
      RunExperiment(model::Llama13B(), PaperMepipe13B(), hw::Rtx4090Cluster(), 64, options);
  const auto b =
      RunExperiment(model::Llama13B(), PaperMepipe13B(), hw::Rtx4090Cluster(), 64, options);
  EXPECT_DOUBLE_EQ(a.mean_iteration, b.mean_iteration);
  EXPECT_DOUBLE_EQ(a.stddev_iteration, b.stddev_iteration);
}

TEST(Experiment, InfeasibleStrategyShortCircuits) {
  Strategy bad = PaperMepipe13B();
  bad.pp = 2;
  bad.dp = 32;
  bad.spp = 1;
  ExperimentOptions options;
  options.iterations = 50;
  const auto report =
      RunExperiment(model::Llama13B(), bad, hw::Rtx4090Cluster(), 64, options);
  EXPECT_FALSE(report.feasible);
  EXPECT_TRUE(report.all_iterations.empty());
  EXPECT_FALSE(report.note.empty());
}

TEST(Experiment, RejectsBadProtocol) {
  ExperimentOptions options;
  options.iterations = 5;
  options.tail = 10;
  EXPECT_THROW(RunExperiment(model::Llama13B(), PaperMepipe13B(), hw::Rtx4090Cluster(), 64,
                             options),
               CheckError);
}

}  // namespace
}  // namespace mepipe::core
