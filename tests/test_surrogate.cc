// The surrogate pricing contract (core/surrogate): exact against the
// engine for transfer-free costs, bounded error on the paper configs,
// cache/fingerprint behavior, closed-form goodput, and the fault-aware
// lower bound's soundness.
#include "core/surrogate.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "core/iteration.h"
#include "core/planner.h"
#include "hw/cluster.h"
#include "model/transformer.h"
#include "sched/baselines.h"
#include "sched/zbv.h"
#include "sim/cost_model.h"
#include "sim/engine.h"

namespace mepipe::core {
namespace {

using sched::Schedule;
using sim::SimResult;
using sim::UniformCostModel;
using sim::WgradMode;

// Every generator family the engine runs, at shapes small enough to
// enumerate quickly but large enough to exercise warmup/steady/drain.
std::vector<std::pair<const char*, Schedule>> TransferFreeCorpus() {
  std::vector<std::pair<const char*, Schedule>> corpus;
  corpus.push_back({"gpipe", sched::GPipeSchedule(4, 6)});
  corpus.push_back({"1f1b", sched::OneFOneBSchedule(4, 8)});
  corpus.push_back({"vpp", sched::VppSchedule(4, 2, 8)});
  corpus.push_back({"terapipe", sched::TeraPipeSchedule(4, 4, 4)});
  corpus.push_back({"zb1p", sched::Zb1pSchedule(4, 8)});
  corpus.push_back({"zbv", sched::HandcraftedZbvSchedule(4, 8)});
  return corpus;
}

void ExpectExactMatch(const TablePrice& table, const SimResult& engine, const char* label) {
  EXPECT_DOUBLE_EQ(table.makespan, engine.makespan) << label;
  EXPECT_DOUBLE_EQ(table.bubble_ratio, engine.bubble_ratio) << label;
  EXPECT_EQ(table.peak_activation, engine.peak_activation) << label;
  EXPECT_EQ(table.budget_violations, engine.budget_violations) << label;
  ASSERT_EQ(table.stage_busy.size(), engine.stages.size()) << label;
  for (std::size_t stage = 0; stage < engine.stages.size(); ++stage) {
    EXPECT_DOUBLE_EQ(table.stage_busy[stage], engine.stages[stage].busy)
        << label << " stage " << stage;
    EXPECT_EQ(table.stage_peak_activation[stage], engine.stages[stage].peak_activation)
        << label << " stage " << stage;
  }
}

TEST(SurrogateTable, ExactForTransferFreeCostsAcrossGeneratorsAndWgradModes) {
  // The contract's "exact" half: with no transfers, the table IS the
  // engine — makespan, bubbles, and memory bit for bit.
  const UniformCostModel costs(1.0, 2.0, 0.7, /*transfer=*/0.0, /*act_bytes=*/10,
                               /*act_grad_bytes=*/3, /*wgrad_gemms=*/3);
  for (const auto& [label, schedule] : TransferFreeCorpus()) {
    for (WgradMode mode : {WgradMode::kImmediate, WgradMode::kFillWhole,
                           WgradMode::kFillGemms}) {
      sim::EngineOptions engine_options;
      engine_options.wgrad_mode = mode;
      const SimResult engine = Simulate(schedule, costs, engine_options);
      TableOptions table_options;
      table_options.wgrad_mode = mode;
      const TablePrice table = PriceScheduleTable(schedule, costs, table_options);
      ExpectExactMatch(table, engine, label);
    }
  }
}

TEST(SurrogateTable, ExactUnderActivationBudgetDrains) {
  // A budget tight enough to force DrainForBudget on every warmup
  // forward; the table must replicate the drain decisions exactly.
  const Schedule schedule = sched::Zb1pSchedule(4, 8);
  const UniformCostModel costs(1.0, 2.0, 0.7, 0.0, /*act_bytes=*/10, /*act_grad_bytes=*/4,
                               /*wgrad_gemms=*/2);
  const std::vector<Bytes> budget(4, 45);
  sim::EngineOptions engine_options;
  engine_options.activation_budget = budget;
  const SimResult engine = Simulate(schedule, costs, engine_options);
  TableOptions table_options;
  table_options.activation_budget = budget;
  const TablePrice table = PriceScheduleTable(schedule, costs, table_options);
  ExpectExactMatch(table, engine, "zb1p budgeted");
}

TEST(SurrogateTable, ExactForOverlappedDpSyncWithoutFabricSharing) {
  const Schedule schedule = sched::OneFOneBSchedule(4, 8);
  const UniformCostModel costs(1.0, 2.0, 0.0, 0.0, 10, 0, 1, /*dp_sync=*/1.5);
  sim::EngineOptions engine_options;
  engine_options.dp_overlap = true;
  const SimResult engine = Simulate(schedule, costs, engine_options);
  TableOptions table_options;
  table_options.dp_overlap = true;
  const TablePrice table = PriceScheduleTable(schedule, costs, table_options);
  EXPECT_DOUBLE_EQ(table.dp_serialized, engine.dp.serialized);
  EXPECT_DOUBLE_EQ(table.dp_hidden, engine.dp.hidden);
  EXPECT_DOUBLE_EQ(table.dp_exposed, engine.dp.exposed);
}

TEST(Surrogate, BoundedRelativeErrorOnPaperConfigs) {
  // The contract's "approximate" half, on the Table 5/6 hardware: the
  // only divergence is transfer-link serialization, so the surrogate's
  // iteration time stays within a few percent of the engine's and
  // feasibility verdicts agree.
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  struct Case {
    Method method;
    int pp, spp, cp, vp;
  };
  const std::vector<Case> cases = {
      {Method::kSvpp, 8, 4, 1, 1},  {Method::kSvpp, 8, 8, 1, 2},
      {Method::kDapple, 8, 1, 1, 1}, {Method::kVpp, 8, 1, 1, 2},
      {Method::kZb1p, 8, 1, 1, 1},   {Method::kTeraPipe, 8, 1, 4, 1},
  };
  for (const Case& c : cases) {
    Strategy strategy;
    strategy.method = c.method;
    strategy.pp = c.pp;
    strategy.spp = c.spp;
    strategy.cp = c.cp;
    strategy.vp = c.vp;
    strategy.dp = 64 / (c.pp * c.cp);
    strategy.recompute = c.method == Method::kVpp;
    IterationOptions iteration;
    iteration.keep_timeline = false;
    const IterationResult exact = SimulateIteration(config, strategy, cluster, 64, iteration);
    SurrogateOptions surrogate;
    surrogate.iteration = iteration;
    const SurrogateResult priced = SurrogatePrice(config, strategy, cluster, 64, surrogate);
    ASSERT_EQ(priced.feasible, exact.feasible) << ToString(c.method) << ": " << priced.note;
    if (!exact.feasible) {
      continue;
    }
    const double rel_error =
        std::abs(priced.iteration_time - exact.iteration_time) / exact.iteration_time;
    EXPECT_LT(rel_error, 0.05) << ToString(c.method) << " surrogate " << priced.iteration_time
                               << " vs exact " << exact.iteration_time;
    EXPECT_LE(priced.iteration_time, exact.iteration_time + 1e-9)
        << ToString(c.method) << ": dropping link serialization can only shorten the run";
    EXPECT_EQ(priced.micros, exact.micros);
  }
}

TEST(Surrogate, ReportsStructuralInfeasibilityLikeTheEngine) {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  Strategy strategy;
  strategy.method = Method::kSvpp;
  strategy.pp = 7;  // 40 partition units need pp | 40
  strategy.dp = 2;
  const SurrogateResult priced = SurrogatePrice(config, strategy, cluster, 64);
  EXPECT_FALSE(priced.feasible);
  EXPECT_FALSE(priced.note.empty());
}

TEST(SurrogateCacheTest, SecondPriceIsAHitWithIdenticalResult) {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  Strategy strategy;
  strategy.method = Method::kSvpp;
  strategy.pp = 8;
  strategy.spp = 4;
  strategy.dp = 8;
  SurrogateCache cache;
  SurrogateOptions options;
  options.cache = &cache;
  const SurrogateResult first = SurrogatePrice(config, strategy, cluster, 64, options);
  const SurrogateResult second = SurrogatePrice(config, strategy, cluster, 64, options);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(first.iteration_time, second.iteration_time);
  EXPECT_EQ(first.peak_memory, second.peak_memory);
  EXPECT_EQ(first.note, second.note);
}

TEST(SurrogateCacheTest, FingerprintSeparatesCostModelChanges) {
  // Same strategy, different cluster link speed: the fingerprint must
  // differ, so the cache misses instead of serving a stale price.
  const auto config = model::Llama13B();
  auto cluster = hw::Rtx4090Cluster();
  Strategy strategy;
  strategy.method = Method::kSvpp;
  strategy.pp = 8;
  strategy.spp = 4;
  strategy.dp = 8;
  SurrogateCache cache;
  SurrogateOptions options;
  options.cache = &cache;
  (void)SurrogatePrice(config, strategy, cluster, 64, options);
  cluster.intra_node.bandwidth *= 2.0;
  const SurrogateResult repriced = SurrogatePrice(config, strategy, cluster, 64, options);
  EXPECT_FALSE(repriced.cache_hit);
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.size(), 2u);

  IterationOptions changed;
  changed.wgrad_mode = sim::WgradMode::kFillWhole;
  EXPECT_NE(CostModelFingerprint(config, cluster, {}),
            CostModelFingerprint(config, cluster, changed));
}

TEST(SurrogateCacheTest, IntervalSolveIsMemoized) {
  SurrogateCache cache;
  ResilienceOptions res;
  res.dp_replicas = 8;
  res.reliability.checkpoint_write_cost = 12.0;
  const CheckpointIntervalSolution a = cache.IntervalSolve(2.0, res);
  const CheckpointIntervalSolution b = cache.IntervalSolve(2.0, res);
  EXPECT_EQ(cache.stats().interval_misses, 1);
  EXPECT_EQ(cache.stats().interval_hits, 1);
  EXPECT_DOUBLE_EQ(a.refined, b.refined);
  EXPECT_DOUBLE_EQ(a.goodput, b.goodput);
  const CheckpointIntervalSolution direct = OptimalCheckpointInterval(2.0, res);
  EXPECT_DOUBLE_EQ(a.refined, direct.refined);
  EXPECT_DOUBLE_EQ(a.goodput, direct.goodput);

  res.reliability.checkpoint_write_cost = 24.0;
  (void)cache.IntervalSolve(2.0, res);
  EXPECT_EQ(cache.stats().interval_misses, 2);
}

TEST(SurrogateCacheTest, ConcurrentMixedTrafficStaysConsistent) {
  // TSan target: hammer one cache from many threads with price lookups,
  // inserts, and interval solves; every thread must read prices equal to
  // a serially computed reference.
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  std::vector<Strategy> strategies;
  for (int spp : {1, 2, 4, 8}) {
    Strategy strategy;
    strategy.method = Method::kSvpp;
    strategy.pp = 8;
    strategy.spp = spp;
    strategy.dp = 8;
    strategies.push_back(strategy);
  }
  std::vector<SurrogateResult> reference;
  for (const Strategy& strategy : strategies) {
    reference.push_back(SurrogatePrice(config, strategy, cluster, 64));
  }

  SurrogateCache cache;
  ResilienceOptions res;
  res.dp_replicas = 8;
  std::atomic<int> mismatches{0};
  const auto worker = [&](int seed) {
    SurrogateOptions options;
    options.cache = &cache;
    for (int round = 0; round < 8; ++round) {
      const std::size_t i =
          static_cast<std::size_t>(seed + round) % strategies.size();
      const SurrogateResult got =
          SurrogatePrice(config, strategies[i], cluster, 64, options);
      if (got.iteration_time != reference[i].iteration_time ||
          got.peak_memory != reference[i].peak_memory) {
        mismatches.fetch_add(1);
      }
      (void)cache.IntervalSolve(1.0 + 0.5 * static_cast<double>(i), res);
      (void)cache.stats();
    }
  };
  std::vector<std::thread> pool;
  for (int t = 0; t < 8; ++t) {
    pool.emplace_back(worker, t);
  }
  for (std::thread& t : pool) {
    t.join();
  }
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(cache.size(), strategies.size());
}

TEST(SurrogateGoodputTest, ClosedFormTracksTheRefinedSolver) {
  ResilienceOptions res;
  res.dp_replicas = 8;
  for (Seconds iteration_time : {0.5, 2.0, 8.0}) {
    const SurrogateGoodput closed = ClosedFormGoodput(iteration_time, Bytes{1} << 33, res);
    ResilienceOptions priced = res;
    priced.reliability.checkpoint_write_cost = closed.checkpoint_write_cost;
    const CheckpointIntervalSolution refined = OptimalCheckpointInterval(iteration_time, priced);
    EXPECT_GT(closed.goodput, 0.0);
    EXPECT_LE(closed.goodput, 1.0);
    EXPECT_GE(closed.effective_iteration_time, iteration_time);
    // The closed form skips the Monte-Carlo refinement but must land in
    // the same neighborhood — it only ranks, the solver prices.
    EXPECT_NEAR(closed.goodput, refined.goodput, 0.05)
        << "iteration_time=" << iteration_time;
  }
  // More write cost can never raise the closed-form goodput.
  ResilienceOptions heavy = res;
  const SurrogateGoodput cheap = ClosedFormGoodput(2.0, Bytes{1} << 30, heavy);
  const SurrogateGoodput expensive = ClosedFormGoodput(2.0, Bytes{1} << 36, heavy);
  EXPECT_GE(cheap.goodput, expensive.goodput);
  EXPECT_GT(expensive.checkpoint_write_cost, cheap.checkpoint_write_cost);
}

TEST(SurrogateLowerBoundTest, NeverExceedsTheMeasuredIterationTime) {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  std::vector<Strategy> strategies;
  for (int spp : {4, 8}) {
    Strategy strategy;
    strategy.method = Method::kSvpp;
    strategy.pp = 8;
    strategy.spp = spp;
    strategy.dp = 8;
    strategies.push_back(strategy);
  }
  Strategy vpp;
  vpp.method = Method::kVpp;
  vpp.pp = 4;  // 40 partition units: pp * vp must divide 40
  vpp.vp = 2;
  vpp.dp = 16;
  vpp.recompute = true;
  strategies.push_back(vpp);

  std::vector<sim::FaultPlanRef> plans;
  plans.emplace_back();  // clean
  sim::FaultPlan straggler;
  straggler.stragglers.push_back({1, 0.0, 1e9, 2.0});
  plans.push_back(straggler);
  sim::FaultPlan windowed;
  windowed.stragglers.push_back({0, 0.0, 5.0, 3.0});
  windowed.stragglers.push_back({2, 10.0, 20.0, 1.5});
  plans.push_back(windowed);

  for (const Strategy& strategy : strategies) {
    for (std::size_t p = 0; p < plans.size(); ++p) {
      IterationOptions options;
      options.keep_timeline = false;
      options.fault_plan = plans[p];
      const auto bound = SurrogateLowerBound(config, strategy, cluster, 64, options);
      ASSERT_TRUE(bound.has_value()) << "plan " << p;
      const IterationResult exact = SimulateIteration(config, strategy, cluster, 64, options);
      ASSERT_TRUE(exact.feasible)
          << ToString(strategy.method) << " spp=" << strategy.spp << ": " << exact.note;
      EXPECT_LE(*bound, exact.iteration_time + 1e-9)
          << ToString(strategy.method) << " spp=" << strategy.spp << " plan " << p;
    }
  }
}

TEST(SurrogateLowerBoundTest, StragglerWindowsRaiseTheBound) {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  Strategy strategy;
  strategy.method = Method::kSvpp;
  strategy.pp = 8;
  strategy.spp = 4;
  strategy.dp = 8;
  IterationOptions clean;
  clean.keep_timeline = false;
  const auto clean_bound = SurrogateLowerBound(config, strategy, cluster, 64, clean);
  sim::FaultPlan plan;
  plan.stragglers.push_back({3, 0.0, 1e9, 2.0});
  IterationOptions faulted = clean;
  faulted.fault_plan = plan;
  const auto faulted_bound = SurrogateLowerBound(config, strategy, cluster, 64, faulted);
  ASSERT_TRUE(clean_bound.has_value());
  ASSERT_TRUE(faulted_bound.has_value());
  EXPECT_GT(*faulted_bound, *clean_bound);
}

}  // namespace
}  // namespace mepipe::core
