// Integration tests: end-to-end iteration simulation (core/iteration).
#include "core/iteration.h"

#include <gtest/gtest.h>

#include "hw/cluster.h"
#include "model/transformer.h"
#include "sched/zbv.h"

namespace mepipe::core {
namespace {

struct Fixture {
  model::TransformerConfig config = model::Llama13B();
  hw::ClusterSpec cluster = hw::Rtx4090Cluster();

  Strategy Make(Method method, int pp, int dp, int slice = 1, int vp = 1,
                bool recompute = false) {
    Strategy s;
    s.method = method;
    s.pp = pp;
    s.dp = dp;
    s.vp = vp;
    s.recompute = recompute;
    if (method == Method::kSvpp || method == Method::kTeraPipe) {
      s.spp = slice;
    } else {
      s.cp = slice;
    }
    return s;
  }
};

TEST(Iteration, MepipePaperConfigIsFeasibleAndFast) {
  // Table 5: MEPipe on 13B, GBS=128: (PP=8, SPP=4, VP=1).
  Fixture fx;
  const auto result =
      SimulateIteration(fx.config, fx.Make(Method::kSvpp, 8, 8, 4), fx.cluster, 128);
  ASSERT_TRUE(result.feasible) << result.note;
  EXPECT_EQ(result.micros, 16);
  // §7.6: ~116 TFLOPS/GPU, 35% MFU, 5.85 s. Allow generous tolerance.
  EXPECT_GT(result.mfu, 0.28);
  EXPECT_LT(result.mfu, 0.42);
  EXPECT_GT(ToMilliseconds(result.iteration_time), 4000);
  EXPECT_LT(ToMilliseconds(result.iteration_time), 8000);
}

TEST(Iteration, UnslicedMepipeIsMemoryStarved) {
  Fixture fx;
  const auto sliced =
      SimulateIteration(fx.config, fx.Make(Method::kSvpp, 8, 8, 4), fx.cluster, 64);
  const auto unsliced =
      SimulateIteration(fx.config, fx.Make(Method::kSvpp, 8, 8, 1), fx.cluster, 64);
  ASSERT_TRUE(sliced.feasible);
  if (unsliced.feasible) {
    EXPECT_GT(unsliced.iteration_time, sliced.iteration_time);
    EXPECT_GT(unsliced.bubble_ratio, sliced.bubble_ratio);
  }
}

TEST(Iteration, DappleNeedsCpForMemoryAtGbs64) {
  // §7.2: pure PP DAPPLE exceeds 24 GB; CP=2 fits.
  Fixture fx;
  const auto pure = SimulateIteration(fx.config, fx.Make(Method::kDapple, 8, 8), fx.cluster, 64);
  const auto cp2 =
      SimulateIteration(fx.config, fx.Make(Method::kDapple, 8, 4, 2), fx.cluster, 64);
  EXPECT_FALSE(pure.feasible);
  EXPECT_TRUE(cp2.feasible) << cp2.note;
}

TEST(Iteration, StructuralRejections) {
  Fixture fx;
  // 40 units % (16·2) != 0.
  auto r = SimulateIteration(fx.config, fx.Make(Method::kVpp, 16, 4, 1, 2), fx.cluster, 64);
  EXPECT_FALSE(r.feasible);
  // dp does not divide the batch.
  Strategy odd = fx.Make(Method::kDapple, 8, 8);
  r = SimulateIteration(fx.config, odd, fx.cluster, 60);
  EXPECT_FALSE(r.feasible);
  // wrong world size.
  Strategy small = fx.Make(Method::kDapple, 8, 4);
  r = SimulateIteration(fx.config, small, fx.cluster, 64);
  EXPECT_FALSE(r.feasible);
  // recompute with split backward.
  Strategy split = fx.Make(Method::kSvpp, 8, 8, 4);
  split.recompute = true;
  r = SimulateIteration(fx.config, split, fx.cluster, 64);
  EXPECT_FALSE(r.feasible);
  // Hanayo is analytic-only.
  Strategy hanayo = fx.Make(Method::kHanayo, 8, 8);
  r = SimulateIteration(fx.config, hanayo, fx.cluster, 64);
  EXPECT_FALSE(r.feasible);
}

TEST(Iteration, PeakMemoryWithinDeviceWhenFeasible) {
  Fixture fx;
  for (int spp : {2, 4, 8}) {
    const auto r =
        SimulateIteration(fx.config, fx.Make(Method::kSvpp, 8, 8, spp), fx.cluster, 64);
    if (r.feasible) {
      EXPECT_LE(r.peak_memory, fx.cluster.gpu.usable_memory()) << "spp=" << spp;
      EXPECT_GT(r.peak_activation, 0);
      EXPECT_GT(r.static_memory, 0);
    }
  }
}

TEST(Iteration, IterationTimeDecomposition) {
  Fixture fx;
  const auto r = SimulateIteration(fx.config, fx.Make(Method::kSvpp, 8, 8, 4), fx.cluster, 64);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.iteration_time, r.pipeline_time + r.dp_sync_time + Milliseconds(15), 1e-9);
  EXPECT_GT(r.dp_sync_time, 0);
}

TEST(Iteration, TimelineKeptOnlyWhenRequested) {
  Fixture fx;
  IterationOptions options;
  options.keep_timeline = false;
  const auto r = SimulateIteration(fx.config, fx.Make(Method::kSvpp, 8, 8, 4), fx.cluster, 64,
                                   options);
  EXPECT_TRUE(r.sim.timeline.empty());
  const auto with = SimulateIteration(fx.config, fx.Make(Method::kSvpp, 8, 8, 4), fx.cluster, 64);
  EXPECT_FALSE(with.sim.timeline.empty());
}

TEST(Iteration, ZbKeepsBoundedMemoryViaBudgetDrains) {
  Fixture fx;
  const auto r = SimulateIteration(fx.config, fx.Make(Method::kZb1p, 8, 4, 2), fx.cluster, 64);
  ASSERT_TRUE(r.feasible) << r.note;
  EXPECT_LE(r.peak_memory, fx.cluster.gpu.usable_memory());
}

TEST(Iteration, ZbvCappedReportsHonestOneFOneBParityMemory) {
  // The capped generator's release-on-B accounting under-reports the
  // peak its deferred Ws actually hold (~A/2); the runner must floor
  // the measured profile at the construction's honest 1F1B-parity
  // bound so planner memory feasibility cannot be fooled.
  Fixture fx;
  fx.config = model::Llama7B();  // 32 layers divide pp*vp = 16
  const Strategy strategy = fx.Make(Method::kZbvCapped, 8, 8, 1, 2);
  const auto build = BuildCandidate(fx.config, strategy, fx.cluster, 64);
  ASSERT_TRUE(build.feasible) << build.note;
  const Bytes honest =
      static_cast<Bytes>(sched::ZbvMaxRetainedForwards(8, build.micros)) *
      build.costs->PerForwardActivationBytes();
  const auto result = SimulateIteration(fx.config, strategy, fx.cluster, 64);
  EXPECT_GE(result.peak_activation, honest);
  EXPECT_GE(result.peak_memory, result.static_memory + honest);
}

TEST(Iteration, SynthBuildsValidatedBudgetedSchedule) {
  // Method::kSynth rides the measured-cost construction path: V-shape
  // placement at vp=2, statically placed W, per-stage budgets derived
  // from (usable - static) / per-forward bytes.
  Fixture fx;
  fx.config = model::Llama7B();
  const Strategy strategy = fx.Make(Method::kSynth, 8, 8, 1, 2);
  const auto build = BuildCandidate(fx.config, strategy, fx.cluster, 64);
  ASSERT_TRUE(build.feasible) << build.note;
  EXPECT_EQ(build.schedule.problem.placement, sched::ChunkPlacement::kVShape);
  EXPECT_TRUE(build.schedule.problem.split_backward);
  EXPECT_FALSE(build.schedule.deferred_wgrad);
  EXPECT_EQ(build.schedule.method.rfind("Synth", 0), 0u);
  const auto result = SimulateIteration(fx.config, strategy, fx.cluster, 64);
  ASSERT_TRUE(result.feasible) << result.note;
  EXPECT_LE(result.peak_memory, fx.cluster.gpu.usable_memory());
  EXPECT_GT(result.mfu, 0.0);
}

TEST(Iteration, TeraPipeMemoryGrowsWithMicros) {
  // TeraPipe retains all samples' activations (§2.1) — more micros, more
  // memory, eventually OOM where SVPP still fits.
  Fixture fx;
  const auto tera =
      SimulateIteration(fx.config, fx.Make(Method::kTeraPipe, 8, 8, 4), fx.cluster, 128);
  const auto svpp =
      SimulateIteration(fx.config, fx.Make(Method::kSvpp, 8, 8, 4), fx.cluster, 128);
  ASSERT_TRUE(svpp.feasible);
  if (tera.feasible) {
    EXPECT_GT(tera.peak_activation, svpp.peak_activation);
  }
}

TEST(Iteration, Mepipe34BPaperConfigFits) {
  // Table 8: MEPipe trains 34B with (PP=16, SPP=16, VP=1) — the s=16
  // SVPP variant is what squeezes into the ~5 GB activation budget
  // (§7.4).
  Fixture fx;
  fx.config = model::Llama34B();
  const auto fine =
      SimulateIteration(fx.config, fx.Make(Method::kSvpp, 16, 4, 16), fx.cluster, 128);
  ASSERT_TRUE(fine.feasible) << fine.note;
  EXPECT_GT(fine.mfu, 0.25);
  // Coarse slicing cannot satisfy the memory limit at a useful bubble.
  const auto coarse =
      SimulateIteration(fx.config, fx.Make(Method::kSvpp, 16, 4, 2), fx.cluster, 128);
  if (coarse.feasible) {
    EXPECT_GT(coarse.iteration_time, fine.iteration_time);
  }
}

TEST(Iteration, Dapple34BNeedsRecompute) {
  // Table 8: DAPPLE's 34B config is (16, 2, 1, recompute ✓).
  Fixture fx;
  fx.config = model::Llama34B();
  const auto plain =
      SimulateIteration(fx.config, fx.Make(Method::kDapple, 16, 2, 2), fx.cluster, 128);
  EXPECT_FALSE(plain.feasible);
  const auto recomputed = SimulateIteration(
      fx.config, fx.Make(Method::kDapple, 16, 2, 2, 1, /*recompute=*/true), fx.cluster, 128);
  EXPECT_TRUE(recomputed.feasible) << recomputed.note;
}

TEST(Iteration, Llama7BZbPaperConfigWorks) {
  // Table 8: ZB trains 7B at (16, 1, 1) without context parallelism.
  Fixture fx;
  fx.config = model::Llama7B();
  const auto r = SimulateIteration(fx.config, fx.Make(Method::kZb1p, 16, 4), fx.cluster, 128);
  ASSERT_TRUE(r.feasible) << r.note;
  EXPECT_GT(r.mfu, 0.15);
}

TEST(Iteration, HanayoWaveExecutable) {
  Fixture fx;
  const auto r =
      SimulateIteration(fx.config, fx.Make(Method::kHanayo, 4, 8, 2, 2), fx.cluster, 64);
  // Feasibility depends on memory; either way the simulation must
  // produce coherent numbers.
  EXPECT_GT(r.pipeline_time, 0.0);
  EXPECT_GT(r.peak_memory, 0);
}

TEST(Iteration, A100ClusterRunsWithTensorParallelism) {
  Fixture fx;
  fx.cluster = hw::A100Cluster();
  Strategy s;
  s.method = Method::kDapple;
  s.pp = 4;
  s.dp = 1;
  s.tp = 8;
  const auto r = SimulateIteration(fx.config, s, fx.cluster, 128);
  ASSERT_TRUE(r.feasible) << r.note;
  EXPECT_GT(r.mfu, 0.2);
}

}  // namespace
}  // namespace mepipe::core
