// Tests for the online elastic runtime (core/elastic): seed
// determinism, the hysteresis contract of live re-plans, policy
// dominance under fail-stops, and the engine-grounded shape pricing
// with schedule-invariant validation.
#include "core/elastic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "hw/cluster.h"
#include "model/transformer.h"
#include "trace/chrome_trace.h"
#include "trace/fault_timeline.h"

namespace mepipe::core {
namespace {

// A failure-prone fleet whose analytic elastic run converges quickly:
// 4 DP replicas, cluster MTBF 4096 gpus / (6h per 1000) = ~5.3 min...
// scaled via target_useful_time so every policy sees a handful of
// failures under any seed.
ElasticOptions FailureProneOptions(std::uint64_t seed) {
  ElasticOptions opt;
  opt.run.gpus = 4096;
  opt.run.dp_replicas = 4;
  opt.run.seed = seed;
  opt.run.reliability.mtbf_per_1000_gpus = 24.0 * 3600.0;
  opt.run.reliability.recovery_time = 120.0;
  opt.run.reliability.checkpoint_write_cost = 20.0;
  opt.run.reliability.checkpoint_interval = 600.0;
  const Seconds mtbf = opt.run.reliability.mtbf_per_1000_gpus * 1000.0 / opt.run.gpus;
  opt.run.target_useful_time = 40.0 * mtbf;
  opt.repair_time = 3600.0;
  opt.reshard_stall = 20.0;
  opt.resolve_checkpoint_interval = false;  // keep the unit tests fast
  opt.pipeline_stages = 4;
  opt.units_per_stage = 4;
  return opt;
}

void ExpectIdentical(const ElasticMetrics& a, const ElasticMetrics& b) {
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_DOUBLE_EQ(a.wall_time, b.wall_time);
  EXPECT_DOUBLE_EQ(a.useful_time, b.useful_time);
  EXPECT_DOUBLE_EQ(a.lost_time, b.lost_time);
  EXPECT_DOUBLE_EQ(a.checkpoint_time, b.checkpoint_time);
  EXPECT_DOUBLE_EQ(a.recovery_time, b.recovery_time);
  EXPECT_DOUBLE_EQ(a.repair_wait_time, b.repair_wait_time);
  EXPECT_DOUBLE_EQ(a.reshard_time, b.reshard_time);
  EXPECT_DOUBLE_EQ(a.replan_time, b.replan_time);
  EXPECT_DOUBLE_EQ(a.degraded_time, b.degraded_time);
  EXPECT_DOUBLE_EQ(a.goodput, b.goodput);
  EXPECT_EQ(a.iterations_completed, b.iterations_completed);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.reshards, b.reshards);
  EXPECT_EQ(a.expansions, b.expansions);
  EXPECT_EQ(a.replans, b.replans);
  EXPECT_EQ(a.straggler_onsets, b.straggler_onsets);
  EXPECT_EQ(a.checkpoints_written, b.checkpoints_written);
  EXPECT_EQ(a.checkpoints_aborted, b.checkpoints_aborted);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_DOUBLE_EQ(a.events[i].begin, b.events[i].begin);
    EXPECT_DOUBLE_EQ(a.events[i].end, b.events[i].end);
    EXPECT_EQ(a.events[i].label, b.events[i].label);
  }
}

TEST(Elastic, SameSeedIsBitIdentical) {
  for (ElasticPolicy policy :
       {ElasticPolicy::kFrozen, ElasticPolicy::kRestart, ElasticPolicy::kElastic}) {
    ElasticOptions opt = FailureProneOptions(2026);
    opt.policy = policy;
    opt.straggler.mtbf = 2000.0;
    opt.straggler.stage = 1;
    opt.straggler.slowdown = 2.0;
    opt.straggler.busy_noise_sigma = 0.02;
    const ElasticMetrics a = SimulateElasticRun(10.0, opt);
    const ElasticMetrics b = SimulateElasticRun(10.0, opt);
    ExpectIdentical(a, b);
    EXPECT_GT(a.failures, 0) << ToString(policy);
    EXPECT_GE(a.useful_time, opt.run.target_useful_time) << ToString(policy);
  }
}

TEST(Elastic, SeedChangesTheRun) {
  ElasticOptions opt = FailureProneOptions(1);
  const ElasticMetrics a = SimulateElasticRun(10.0, opt);
  opt.run.seed = 2;
  const ElasticMetrics b = SimulateElasticRun(10.0, opt);
  EXPECT_NE(a.wall_time, b.wall_time);
}

TEST(Elastic, FailureArrivalsArePolicyInvariant) {
  // The hazard budget is spent in full-fleet-equivalent time from a
  // dedicated stream, so the three policies draw the identical failure
  // sequence: until the first failure they are the same run, and the
  // first fail-stop strikes at the same wall instant. (Total *counts*
  // legitimately differ — the run ends at a useful-time target, and a
  // policy that stalls longer spans more hazard.)
  Seconds first[3] = {-1.0, -1.0, -1.0};
  int i = 0;
  for (ElasticPolicy policy :
       {ElasticPolicy::kFrozen, ElasticPolicy::kRestart, ElasticPolicy::kElastic}) {
    ElasticOptions opt = FailureProneOptions(77);
    opt.policy = policy;
    const ElasticMetrics m = SimulateElasticRun(10.0, opt);
    EXPECT_GT(m.failures, 0) << ToString(policy);
    for (const sim::FaultSpan& e : m.events) {
      if (e.kind == sim::FaultKind::kFailStop) {
        first[i] = e.begin;
        break;
      }
    }
    ++i;
  }
  EXPECT_GT(first[0], 0.0);
  EXPECT_DOUBLE_EQ(first[0], first[1]);
  EXPECT_DOUBLE_EQ(first[1], first[2]);
}

TEST(Elastic, ElasticDominatesRestartDominatesFrozen) {
  // The tentpole's acceptance ordering on a repair-heavy fleet: elastic
  // keeps survivors training through the repair window, restart idles
  // them, frozen additionally rolls back to the durable checkpoint.
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    ElasticOptions opt = FailureProneOptions(seed);
    opt.policy = ElasticPolicy::kFrozen;
    const ElasticMetrics frozen = SimulateElasticRun(10.0, opt);
    opt.policy = ElasticPolicy::kRestart;
    const ElasticMetrics restart = SimulateElasticRun(10.0, opt);
    opt.policy = ElasticPolicy::kElastic;
    const ElasticMetrics elastic = SimulateElasticRun(10.0, opt);

    EXPECT_GE(restart.goodput, frozen.goodput) << "seed " << seed;
    EXPECT_GT(elastic.goodput, restart.goodput) << "seed " << seed;
    EXPECT_GT(elastic.reshards, 0) << "seed " << seed;
    EXPECT_EQ(elastic.reshards + elastic.expansions > 0, true);
    // Elastic never stops the world while a smaller shape exists.
    EXPECT_DOUBLE_EQ(elastic.repair_wait_time, 0.0) << "seed " << seed;
    EXPECT_GT(elastic.degraded_time, 0.0) << "seed " << seed;
    // Restart/frozen idle through every repair instead.
    EXPECT_GT(restart.repair_wait_time, 0.0) << "seed " << seed;
    EXPECT_DOUBLE_EQ(restart.reshard_time, 0.0) << "seed " << seed;
    // Frozen additionally loses the uncheckpointed prefix.
    EXPECT_GE(frozen.lost_time, restart.lost_time) << "seed " << seed;
  }
}

TEST(Elastic, SingleReplicaFallsBackToSynchronousOutage) {
  // dp == 1: no surviving peer, so the elastic policy degenerates to
  // the frozen rollback + wait — and must still terminate.
  ElasticOptions opt = FailureProneOptions(5);
  opt.run.dp_replicas = 1;
  opt.policy = ElasticPolicy::kElastic;
  const ElasticMetrics m = SimulateElasticRun(10.0, opt);
  EXPECT_GT(m.failures, 0);
  EXPECT_EQ(m.reshards, 0);
  EXPECT_GT(m.repair_wait_time, 0.0);
  EXPECT_GE(m.useful_time, opt.run.target_useful_time);
}

TEST(Elastic, TransientStragglerNeverTriggersAReplan) {
  // The hysteresis property: a straggler that lives inside a single
  // detection window cannot produce two consecutive deviant windows, so
  // the run must finish with zero re-plans no matter how many transient
  // onsets occur.
  ElasticOptions opt = FailureProneOptions(42);
  opt.run.reliability.mtbf_per_1000_gpus = 1e12;  // isolate the straggler path
  opt.run.target_useful_time = 2000.0;            // 200 iterations
  opt.straggler.mtbf = 300.0;
  opt.straggler.stage = 1;
  opt.straggler.slowdown = 2.0;
  opt.straggler.duration = 10.0;  // one iteration out of a 4-iteration window
  opt.detector.window = 4;
  opt.detector.min_observations = 2;
  // One straggled iteration dilutes to 1 + (2-1)/4 = 1.25 < 1.3.
  opt.detector.trigger_threshold = 1.3;
  opt.detector.hysteresis_windows = 2;
  const ElasticMetrics m = SimulateElasticRun(10.0, opt);
  EXPECT_GT(m.straggler_onsets, 1);
  EXPECT_EQ(m.replans, 0);
  EXPECT_DOUBLE_EQ(m.replan_time, 0.0);
}

TEST(Elastic, PersistentStragglerTriggersExactlyOneReplan) {
  // ... while a persistent straggler MUST trigger — exactly once: after
  // the re-plan the adopted profile matches the hardware, the detector
  // re-arms against the new plan, and nothing deviates again.
  ElasticOptions opt = FailureProneOptions(42);
  opt.run.reliability.mtbf_per_1000_gpus = 1e12;
  opt.run.target_useful_time = 3000.0;
  opt.straggler.mtbf = 200.0;   // onset early in the run
  opt.straggler.stage = 1;
  opt.straggler.slowdown = 2.0;
  opt.straggler.duration = 0.0;  // persists to the end of the run
  opt.detector.window = 4;
  opt.detector.min_observations = 2;
  opt.detector.trigger_threshold = 1.3;
  opt.detector.hysteresis_windows = 2;
  const ElasticMetrics m = SimulateElasticRun(10.0, opt);
  EXPECT_EQ(m.straggler_onsets, 1);
  EXPECT_EQ(m.replans, 1);
  EXPECT_DOUBLE_EQ(m.replan_time, opt.replan_stall);
  // The re-plan pays off: bottleneck 5/4 instead of the raw 2x dilation
  // on most iterations, so goodput beats the no-detector run.
  ElasticOptions undetected = opt;
  undetected.straggler.mtbf = 0;  // no straggler at all
  ElasticOptions frozen_plan = opt;
  frozen_plan.detector.trigger_threshold = 100.0;  // detector never fires
  const ElasticMetrics no_replan = SimulateElasticRun(10.0, frozen_plan);
  EXPECT_EQ(no_replan.replans, 0);
  EXPECT_GT(m.goodput, no_replan.goodput);
}

TEST(Elastic, ClearedStragglerTriggersTheSymmetricRevert) {
  // A straggler that clears after the re-plan reads as deviation in the
  // opposite direction (the mitigated plan over-provisions the now-fast
  // stage), so the loop re-plans back: at least two re-plans total.
  ElasticOptions opt = FailureProneOptions(42);
  opt.run.reliability.mtbf_per_1000_gpus = 1e12;
  opt.run.target_useful_time = 4000.0;
  opt.straggler.mtbf = 20000.0;  // effectively: one onset, then none
  opt.straggler.stage = 1;
  opt.straggler.slowdown = 2.0;
  opt.straggler.duration = 1200.0;  // long enough to trigger, then clears
  opt.detector.window = 4;
  opt.detector.min_observations = 2;
  opt.detector.trigger_threshold = 1.3;
  opt.detector.hysteresis_windows = 2;
  ElasticMetrics m = SimulateElasticRun(10.0, opt);
  if (m.straggler_onsets == 0) {
    // The deterministic first onset landed past the run for this seed;
    // pick the fallback seed that lands it inside (both are pinned).
    opt.run.seed = 43;
    m = SimulateElasticRun(10.0, opt);
  }
  ASSERT_GE(m.straggler_onsets, 1);
  EXPECT_GE(m.replans, 2);  // adopt + revert
  int replan_events = 0;
  for (const sim::FaultSpan& e : m.events) {
    if (e.kind == sim::FaultKind::kReplan) {
      ++replan_events;
    }
  }
  EXPECT_EQ(replan_events, m.replans);
}

TEST(Elastic, EventsExportThroughTheTraceLayer) {
  ElasticOptions opt = FailureProneOptions(3);
  const ElasticMetrics m = SimulateElasticRun(10.0, opt);
  ASSERT_FALSE(m.events.empty());
  const std::string csv = trace::FaultTimelineCsv(m.events);
  EXPECT_NE(csv.find("fail-stop"), std::string::npos);
  EXPECT_NE(csv.find("reshard"), std::string::npos);
  EXPECT_NE(csv.find("repair"), std::string::npos);
  const std::string json = trace::ToChromeTraceJson(m.events);
  EXPECT_NE(json.find("\"pid\": 2"), std::string::npos);
  // Events are begin-sorted — the exporters' documented precondition.
  for (std::size_t i = 1; i < m.events.size(); ++i) {
    EXPECT_LE(m.events[i - 1].begin, m.events[i].begin + 1e-9);
  }
}

TEST(Elastic, ResolvesTheIntervalPerSurvivingShape) {
  ElasticOptions opt = FailureProneOptions(7);
  opt.resolve_checkpoint_interval = true;
  opt.interval_solve_mtbfs = 20.0;  // cheap solver runs
  const ElasticMetrics m = SimulateElasticRun(10.0, opt);
  ASSERT_EQ(m.checkpoint_interval_by_survivors.size(), 4u);
  // The full fleet is always visited; every visited shape got a
  // positive solver-chosen interval.
  EXPECT_GT(m.checkpoint_interval_by_survivors[3], 0.0);
  for (int s = 0; s < 4; ++s) {
    if (m.checkpoint_interval_by_survivors[s] > 0.0 && s < 3) {
      // A smaller fleet fails less often; its interval is no shorter.
      EXPECT_GE(m.checkpoint_interval_by_survivors[s] * 1.5,
                m.checkpoint_interval_by_survivors[3]);
    }
  }
}

TEST(Elastic, ValidatesOptions) {
  ElasticOptions opt = FailureProneOptions(1);
  opt.repair_time = -1.0;
  EXPECT_THROW(SimulateElasticRun(10.0, opt), CheckError);
  opt = FailureProneOptions(1);
  opt.straggler.slowdown = 0.5;
  EXPECT_THROW(SimulateElasticRun(10.0, opt), CheckError);
  opt = FailureProneOptions(1);
  opt.straggler.stage = 9;  // outside the 4-stage pipeline
  EXPECT_THROW(SimulateElasticRun(10.0, opt), CheckError);
  opt = FailureProneOptions(1);
  opt.iteration_time_by_survivors = {1.0};  // wrong length (dp == 4)
  EXPECT_THROW(SimulateElasticRun(10.0, opt), CheckError);
  opt = FailureProneOptions(1);
  opt.run.dp_replicas = 0;  // the satellite contract, through elastic
  EXPECT_THROW(SimulateElasticRun(10.0, opt), CheckError);
  EXPECT_THROW(SimulateElasticRun(0.0, FailureProneOptions(1)), CheckError);
  EXPECT_STREQ(ToString(ElasticPolicy::kFrozen), "frozen");
  EXPECT_STREQ(ToString(ElasticPolicy::kRestart), "restart");
  EXPECT_STREQ(ToString(ElasticPolicy::kElastic), "elastic");
}

TEST(Elastic, PricesEveryShapeOnTheEngine) {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  Strategy strategy;
  strategy.method = Method::kSvpp;
  strategy.pp = 8;
  strategy.dp = 8;
  strategy.spp = 8;  // slice-level scheduling: kDapple OOMs on 24 GB here

  ElasticOptions opt = FailureProneOptions(1);
  opt.run.dp_replicas = 8;
  const ElasticPricing pricing = PriceElasticShapes(config, strategy, cluster, 64, opt);

  EXPECT_GT(pricing.clean_iteration_time, 0.0);
  ASSERT_EQ(pricing.shapes.size(), 8u);
  Seconds prev = 0.0;
  for (int s = 8; s >= 2; --s) {
    const ElasticShape& shape = pricing.shapes[s - 1];
    ASSERT_TRUE(shape.feasible) << "survivors " << s << ": " << shape.note;
    // Fewer survivors process more micro-batches each: per-iteration
    // wall grows monotonically as the ring shrinks.
    EXPECT_GE(shape.iteration_time, prev) << "survivors " << s;
    prev = shape.iteration_time;
    EXPECT_GE(shape.useful_fraction, 1.0 - 1e-9);
    EXPECT_GT(shape.reshard_stall, 0.0);
    // The acceptance criterion: every shape's schedule passes the
    // sched/validate invariants under its activation budget.
    EXPECT_EQ(shape.invariant_violations, 0) << "survivors " << s;
  }
  // The memory cliff is real: a lone survivor holds the *whole* ZeRO-1
  // optimizer state, and 13B unsharded does not fit a 24 GB card. The
  // pricer marks the shape infeasible (the run falls back to a
  // restart-style outage there) instead of pretending it runs.
  EXPECT_FALSE(pricing.shapes[0].feasible);
  EXPECT_NE(pricing.shapes[0].note.find("memory"), std::string::npos);
  EXPECT_EQ(pricing.validated_schedules, 7);
  ASSERT_EQ(opt.shape_feasible.size(), 8u);
  EXPECT_EQ(opt.shape_feasible[0], 0);
  EXPECT_EQ(opt.shape_feasible[7], 1);
  // The options now carry the engine-grounded overrides.
  ASSERT_EQ(opt.iteration_time_by_survivors.size(), 8u);
  EXPECT_DOUBLE_EQ(opt.iteration_time_by_survivors[7], pricing.clean_iteration_time);
  ASSERT_EQ(opt.clean_stage_busy.size(), 8u);
  EXPECT_EQ(opt.pipeline_stages, 8);
}

TEST(Elastic, EngineGroundedRunBeatsRestartToo) {
  // End-to-end: measured shape times instead of the analytic dp/s
  // scaling, same dominance.
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  Strategy strategy;
  strategy.method = Method::kSvpp;
  strategy.pp = 8;
  strategy.dp = 8;
  strategy.spp = 8;

  ElasticOptions opt = FailureProneOptions(21);
  opt.run.dp_replicas = 8;
  const Seconds mtbf = opt.run.reliability.mtbf_per_1000_gpus * 1000.0 / opt.run.gpus;
  opt.run.target_useful_time = 20.0 * mtbf;

  opt.policy = ElasticPolicy::kRestart;
  const ElasticMetrics restart =
      SimulateElasticRun(config, strategy, cluster, 64, opt);
  opt.policy = ElasticPolicy::kElastic;
  const ElasticMetrics elastic =
      SimulateElasticRun(config, strategy, cluster, 64, opt);
  EXPECT_GT(elastic.goodput, restart.goodput);
  EXPECT_GT(elastic.reshards, 0);
}

TEST(Elastic, SurrogateTriageOffKeepsTheBaseStrategyOnEveryShape) {
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  Strategy strategy;
  strategy.method = Method::kSvpp;
  strategy.pp = 8;
  strategy.dp = 8;
  strategy.spp = 8;

  ElasticOptions opt = FailureProneOptions(1);
  opt.run.dp_replicas = 8;
  const ElasticPricing pricing = PriceElasticShapes(config, strategy, cluster, 64, opt);
  for (const ElasticShape& shape : pricing.shapes) {
    if (!shape.feasible) {
      continue;
    }
    EXPECT_EQ(shape.surrogate_variants, 0) << "survivors " << shape.survivors;
    EXPECT_EQ(shape.strategy.spp, strategy.spp) << "survivors " << shape.survivors;
    EXPECT_EQ(shape.strategy.vp, strategy.vp) << "survivors " << shape.survivors;
    EXPECT_EQ(shape.strategy.dp, shape.survivors);
  }
}

TEST(Elastic, SurrogateTriageSearchesPartitioningsPerShape) {
  // With the triage on, every degraded shape re-plans its SPP split:
  // the surrogate prices the variants, the engine runs only the pick,
  // and the priced run can never be slower than the base partitioning
  // on the shapes where it re-planned.
  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  Strategy strategy;
  strategy.method = Method::kSvpp;
  strategy.pp = 8;
  strategy.dp = 8;
  strategy.spp = 8;

  ElasticOptions base_opt = FailureProneOptions(1);
  base_opt.run.dp_replicas = 8;
  const ElasticPricing base = PriceElasticShapes(config, strategy, cluster, 64, base_opt);

  SurrogateCache cache;
  ElasticOptions opt = FailureProneOptions(1);
  opt.run.dp_replicas = 8;
  opt.surrogate_shape_search = true;
  opt.shape_slice_candidates = {1, 2, 4, 8, 16};
  opt.surrogate_cache = &cache;
  const ElasticPricing triaged = PriceElasticShapes(config, strategy, cluster, 64, opt);

  ASSERT_EQ(triaged.shapes.size(), base.shapes.size());
  for (std::size_t i = 0; i < triaged.shapes.size(); ++i) {
    const ElasticShape& shape = triaged.shapes[i];
    if (!shape.feasible) {
      continue;
    }
    EXPECT_GT(shape.surrogate_variants, 1) << "survivors " << shape.survivors;
    EXPECT_EQ(shape.strategy.dp, shape.survivors);
    EXPECT_EQ(shape.strategy.pp, strategy.pp);  // GPU footprint never changes
    ASSERT_TRUE(base.shapes[i].feasible);
    EXPECT_LE(shape.iteration_time, base.shapes[i].iteration_time + 1e-9)
        << "survivors " << shape.survivors << " re-planned to spp=" << shape.strategy.spp
        << " but runs slower than the base split";
    EXPECT_EQ(shape.invariant_violations, 0) << "survivors " << shape.survivors;
  }
  EXPECT_GT(cache.stats().misses, 0);

  // Determinism: the same triage lands on the same picks and times.
  ElasticOptions again = FailureProneOptions(1);
  again.run.dp_replicas = 8;
  again.surrogate_shape_search = true;
  again.shape_slice_candidates = {1, 2, 4, 8, 16};
  again.surrogate_cache = &cache;
  const ElasticPricing repeat = PriceElasticShapes(config, strategy, cluster, 64, again);
  for (std::size_t i = 0; i < triaged.shapes.size(); ++i) {
    EXPECT_EQ(repeat.shapes[i].strategy.spp, triaged.shapes[i].strategy.spp);
    EXPECT_EQ(repeat.shapes[i].iteration_time, triaged.shapes[i].iteration_time);
  }
}

}  // namespace
}  // namespace mepipe::core
