// Tests for the cost-model decorator API: WrappingCostModel forwarding,
// CostModelStack ownership/fluency, and how the in-tree decorators
// (Noisy, Faulty, Rebalanced) compose.
#include "sim/cost_model.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/rebalance.h"
#include "sched/baselines.h"
#include "sim/fault.h"
#include "sim/noise.h"

namespace mepipe {
namespace {

using sched::OpId;
using sched::OpKind;

const OpId kForward{OpKind::kForward, 1, 0, 0};
const OpId kBackward{OpKind::kBackward, 1, 0, 0};
const OpId kWgrad{OpKind::kWeightGrad, 1, 0, 0};
const OpId kBucket{OpKind::kDpSync, 0, 0, 0};

TEST(WrappingCostModel, ForwardsEveryQuery) {
  const sim::UniformCostModel base(1.0, 2.0, 0.5, 0.1, /*act=*/7, /*act_grad=*/3,
                                   /*wgrad_gemms=*/4, /*dp_sync=*/0.25);
  const sim::WrappingCostModel wrapped(base);
  EXPECT_DOUBLE_EQ(wrapped.ComputeTime(kForward), base.ComputeTime(kForward));
  EXPECT_DOUBLE_EQ(wrapped.ComputeTime(kBackward), base.ComputeTime(kBackward));
  EXPECT_DOUBLE_EQ(wrapped.TransferTime(kForward), base.TransferTime(kForward));
  EXPECT_EQ(wrapped.ActivationBytes(kForward), base.ActivationBytes(kForward));
  EXPECT_EQ(wrapped.ActGradBytes(kBackward), base.ActGradBytes(kBackward));
  EXPECT_EQ(wrapped.WeightGradGemmCount(kWgrad), base.WeightGradGemmCount(kWgrad));
  EXPECT_DOUBLE_EQ(wrapped.DpSyncTime(kBucket), base.DpSyncTime(kBucket));
}

TEST(CostModelStack, EmptyStackIsTheBase) {
  const sim::UniformCostModel base(1.0, 2.0, 0.0, 0.0);
  const sim::CostModelStack stack(base);
  EXPECT_EQ(stack.depth(), 0);
  EXPECT_EQ(&stack.model(), static_cast<const sim::CostModel*>(&base));
}

TEST(CostModelStack, NoisyLayerMatchesDirectConstruction) {
  const sim::UniformCostModel base(1.0, 2.0, 0.5, 0.1, 1, 0, 1, /*dp_sync=*/0.25);
  const sim::NoisyCostModel direct(base, /*sigma=*/0.1, /*seed=*/42);
  sim::CostModelStack stack(base);
  stack.Noisy(0.1, 42);
  EXPECT_EQ(stack.depth(), 1);
  for (const OpId& op : {kForward, kBackward, kWgrad}) {
    EXPECT_DOUBLE_EQ(stack.model().ComputeTime(op), direct.ComputeTime(op));
    EXPECT_DOUBLE_EQ(stack.model().TransferTime(op), direct.TransferTime(op));
  }
  // The DP bucket rides the same jitter machinery.
  EXPECT_DOUBLE_EQ(stack.model().DpSyncTime(kBucket), direct.DpSyncTime(kBucket));
  EXPECT_NE(stack.model().DpSyncTime(kBucket), base.DpSyncTime(kBucket));
  // Non-perturbed queries fall through to the base.
  EXPECT_EQ(stack.model().WeightGradGemmCount(kWgrad), base.WeightGradGemmCount(kWgrad));
}

TEST(CostModelStack, FaultyLayerValidatesThePlan) {
  const sim::UniformCostModel base(1.0, 2.0, 0.0, 0.0);
  sim::FaultPlan bad;
  bad.stragglers.push_back({/*stage=*/7, /*begin=*/0.0, /*end=*/1.0, /*slowdown=*/2.0});
  sim::CostModelStack stack(base);
  EXPECT_THROW(stack.Faulty(bad, /*stages=*/4), CheckError);

  sim::FaultPlan good;
  good.stragglers.push_back({/*stage=*/1, /*begin=*/0.0, /*end=*/100.0, /*slowdown=*/2.0});
  sim::CostModelStack ok(base);
  ok.Faulty(good, /*stages=*/4);
  EXPECT_EQ(ok.depth(), 1);
  // The plain interface stays fault-free (the engine uses the time-aware
  // queries); durations forward to the base.
  EXPECT_DOUBLE_EQ(ok.model().ComputeTime(kForward), base.ComputeTime(kForward));
}

TEST(CostModelStack, FaultyDilatesTheLayersBelowIt) {
  // Noisy-then-Faulty: the straggler window integrates over the
  // *jittered* duration — the decorator order the measurement protocol
  // wants (see the ordering note in sim/cost_model.h).
  const sim::UniformCostModel base(1.0, 2.0, 0.0, 0.0);
  sim::FaultPlan plan;
  plan.stragglers.push_back({/*stage=*/0, /*begin=*/0.0, /*end=*/1e9, /*slowdown=*/2.0});
  sim::CostModelStack stack(base);
  stack.Noisy(0.2, 7).Faulty(plan, /*stages=*/2);
  EXPECT_EQ(stack.depth(), 2);
  const auto& faulty = static_cast<const sim::FaultyCostModel&>(stack.model());
  const Seconds jittered = sim::NoisyCostModel(base, 0.2, 7).ComputeTime(kForward);
  EXPECT_NE(jittered, base.ComputeTime(kForward));
  EXPECT_NEAR(faulty.ComputeEndAt(/*stage=*/0, kForward, /*start=*/0.0), 2.0 * jittered,
              1e-12);
}

TEST(CostModelStack, MultiplicativeLayersCommute) {
  // Rebalanced and Noisy both rescale durations per op, so the two stack
  // orders price every op identically.
  const auto schedule = sched::OneFOneBSchedule(2, 4);
  core::StageProfile profile;
  profile.slowdown = {2.0, 1.0};
  core::RebalanceOptions options;
  options.units_per_chunk = 8;
  options.rebalance_slices = false;
  options.retune_caps = false;
  const core::RebalancePlan plan = Rebalance(profile, schedule.problem, options);
  ASSERT_TRUE(plan.repartitioned());

  const sim::UniformCostModel base(1.0, 2.0, 0.5, 0.1, 1, 0, 1, /*dp_sync=*/0.25);
  sim::CostModelStack noisy_first(base);
  noisy_first.Noisy(0.1, 3).Wrap<core::RebalancedCostModel>(schedule.problem, plan);
  sim::CostModelStack rebalanced_first(base);
  rebalanced_first.Wrap<core::RebalancedCostModel>(schedule.problem, plan).Noisy(0.1, 3);
  EXPECT_EQ(noisy_first.depth(), 2);
  EXPECT_EQ(rebalanced_first.depth(), 2);

  for (int chunk = 0; chunk < 2; ++chunk) {
    for (const OpKind kind : {OpKind::kForward, OpKind::kBackward}) {
      const OpId op{kind, 0, 0, chunk};
      EXPECT_DOUBLE_EQ(noisy_first.model().ComputeTime(op),
                       rebalanced_first.model().ComputeTime(op))
          << "chunk " << chunk;
    }
    const OpId bucket{OpKind::kDpSync, 0, 0, chunk};
    EXPECT_DOUBLE_EQ(noisy_first.model().DpSyncTime(bucket),
                     rebalanced_first.model().DpSyncTime(bucket));
  }
  // And the rebalanced layer really changed something.
  const OpId moved{OpKind::kForward, 0, 0, 0};
  EXPECT_NE(core::RebalancedCostModel(base, schedule.problem, plan).ComputeTime(moved),
            base.ComputeTime(moved));
}

TEST(CostModelStack, RebalancedScalesDpBucketsWithUnitShare) {
  // A chunk that sheds layers sheds gradient bytes: its bucket shrinks by
  // the same unit ratio.
  const auto schedule = sched::OneFOneBSchedule(2, 4);
  core::StageProfile profile;
  profile.slowdown = {2.0, 1.0};
  core::RebalanceOptions options;
  options.units_per_chunk = 8;
  options.rebalance_slices = false;
  options.retune_caps = false;
  const core::RebalancePlan plan = Rebalance(profile, schedule.problem, options);
  ASSERT_TRUE(plan.repartitioned());

  const sim::UniformCostModel base(1.0, 2.0, 0.0, 0.0, 1, 0, 1, /*dp_sync=*/0.4);
  const core::RebalancedCostModel rebalanced(base, schedule.problem, plan);
  for (int chunk = 0; chunk < 2; ++chunk) {
    const OpId bucket{OpKind::kDpSync, 0, 0, chunk};
    EXPECT_DOUBLE_EQ(rebalanced.DpSyncTime(bucket), 0.4 * plan.unit_ratio(chunk))
        << "chunk " << chunk;
  }
}

}  // namespace
}  // namespace mepipe
