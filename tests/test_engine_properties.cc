// Property-based tests of the discrete-event engine: invariants that
// must hold for every (schedule, cost, mode) combination — completeness
// of execution, time monotonicity, work conservation, memory-budget
// respect — swept over randomized problem shapes.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <unordered_map>

#include "core/svpp.h"
#include "sched/baselines.h"
#include "sched/op.h"
#include "sim/cost_model.h"
#include "sim/engine.h"
#include "sim/noise.h"

namespace mepipe::sim {
namespace {

using sched::OpId;
using sched::OpIdHash;
using sched::OpKind;

struct Shape {
  int p, v, s, n;
  bool split;
};

Shape RandomShape(std::mt19937& rng) {
  std::uniform_int_distribution<int> p_dist(1, 6);
  std::uniform_int_distribution<int> v_dist(1, 2);
  std::uniform_int_distribution<int> s_dist(1, 4);
  std::uniform_int_distribution<int> n_dist(1, 7);
  std::uniform_int_distribution<int> b_dist(0, 1);
  return {p_dist(rng), v_dist(rng), s_dist(rng), n_dist(rng), b_dist(rng) == 1};
}

sched::Schedule MakeSvpp(const Shape& shape) {
  core::SvppOptions options;
  options.stages = shape.p;
  options.virtual_chunks = shape.v;
  options.slices = shape.s;
  options.micros = shape.n;
  options.split_backward = shape.split;
  return GenerateSvpp(options);
}

// Checks the invariants of one executed run.
void CheckInvariants(const sched::Schedule& schedule, const SimResult& result,
                     const CostModel& costs, bool expect_wgrad_items) {
  const auto& problem = schedule.problem;

  // 1. Every F and B executed exactly once; per-stage spans don't overlap.
  std::unordered_map<OpId, int, OpIdHash> seen;
  std::vector<std::vector<std::pair<Seconds, Seconds>>> by_stage(
      static_cast<std::size_t>(problem.stages));
  for (const OpSpan& span : result.timeline) {
    if (span.is_transfer) {
      continue;
    }
    EXPECT_LE(span.start, span.end);
    EXPECT_GE(span.start, 0.0);
    ++seen[span.op];
    by_stage[static_cast<std::size_t>(span.stage)].push_back({span.start, span.end});
  }
  for (int stage = 0; stage < problem.stages; ++stage) {
    for (const OpId& op : sched::StageOps(problem, stage)) {
      if (op.kind == OpKind::kWeightGrad) {
        continue;  // may run whole or as GEMMs; checked via release below
      }
      EXPECT_EQ(seen[op], 1) << ToString(op);
    }
    auto& spans = by_stage[static_cast<std::size_t>(stage)];
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].first, spans[i - 1].second - 1e-9)
          << "overlap on stage " << stage;
    }
  }

  // 2. Weight-gradient work is never lost: with split backward, each
  // (m,t,g) appears as a whole W or as its full GEMM set.
  if (expect_wgrad_items && problem.split_backward) {
    for (int stage = 0; stage < problem.stages; ++stage) {
      for (const OpId& op : sched::StageOps(problem, stage)) {
        if (op.kind != OpKind::kWeightGrad) {
          continue;
        }
        const int whole = seen[op];
        int gemms = 0;
        const int expected_gemms = costs.WeightGradGemmCount(op);
        for (int k = 0; k < expected_gemms; ++k) {
          gemms += seen[{OpKind::kWeightGradGemm, op.micro, op.slice, op.chunk, k}];
        }
        EXPECT_TRUE((whole == 1 && gemms == 0) || (whole == 0 && gemms == expected_gemms))
            << ToString(op) << " whole=" << whole << " gemms=" << gemms;
      }
    }
  }

  // 3. Work conservation: per-stage busy equals the sum of its spans.
  for (int stage = 0; stage < problem.stages; ++stage) {
    Seconds total = 0;
    for (const auto& [start, end] : by_stage[static_cast<std::size_t>(stage)]) {
      total += end - start;
    }
    EXPECT_NEAR(result.stages[static_cast<std::size_t>(stage)].busy, total, 1e-9);
  }

  // 4. Makespan covers every span; bubble ratios are in [0, 1).
  for (const OpSpan& span : result.timeline) {
    if (!span.is_transfer) {
      EXPECT_LE(span.end, result.makespan + 1e-9);
    }
  }
  for (const auto& stage : result.stages) {
    EXPECT_GE(stage.bubble_ratio, 0.0);
    EXPECT_LT(stage.bubble_ratio, 1.0);
  }
}

TEST(EngineProperties, RandomSvppShapes) {
  std::mt19937 rng(20250705);
  for (int trial = 0; trial < 40; ++trial) {
    const Shape shape = RandomShape(rng);
    const auto schedule = MakeSvpp(shape);
    const UniformCostModel costs(1.0, shape.split ? 1.0 : 2.0, 1.0, 0.05, 8, 3, 6);
    EngineOptions options;
    options.wgrad_mode = (trial % 3 == 0)   ? WgradMode::kImmediate
                         : (trial % 3 == 1) ? WgradMode::kFillWhole
                                            : WgradMode::kFillGemms;
    const SimResult result = Simulate(schedule, costs, options);
    CheckInvariants(schedule, result, costs, /*expect_wgrad_items=*/true);
  }
}

TEST(EngineProperties, RandomBaselineShapes) {
  std::mt19937 rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    std::uniform_int_distribution<int> p_dist(1, 8);
    std::uniform_int_distribution<int> n_dist(1, 9);
    const int p = p_dist(rng);
    const int n = n_dist(rng);
    for (const auto& schedule :
         {sched::GPipeSchedule(p, n), sched::OneFOneBSchedule(p, n),
          sched::TeraPipeSchedule(p, 3, n), sched::Zb1pSchedule(p, n)}) {
      const UniformCostModel costs(1.0, 2.0, 1.0, 0.02, 4, 2, 3);
      const SimResult result = Simulate(schedule, costs);
      CheckInvariants(schedule, result, costs, /*expect_wgrad_items=*/true);
    }
  }
}

TEST(EngineProperties, SingleStagePipelineHasNoTransfers) {
  const auto schedule = sched::OneFOneBSchedule(1, 4);
  const UniformCostModel costs(1.0, 2.0, 0.0, 5.0);  // huge transfer cost
  const SimResult result = Simulate(schedule, costs);
  for (const OpSpan& span : result.timeline) {
    EXPECT_FALSE(span.is_transfer);
  }
  EXPECT_DOUBLE_EQ(result.makespan, 4 * 3.0);
  EXPECT_NEAR(result.bubble_ratio, 0.0, 1e-12);
}

TEST(EngineProperties, BudgetCapsPeakMemory) {
  // With an activation budget, the measured peak never exceeds
  // budget + one op's allocation (the op that triggered the drain).
  // The budget governs deferred-W retention; the schedule's own warmup
  // depth is the §4.5 planner's responsibility, so use the minimal
  // variant (f = v·s) to isolate the engine's contribution.
  core::SvppOptions options;
  options.stages = 4;
  options.slices = 2;
  options.micros = 8;
  options.max_inflight = core::MinInflight(options);
  const auto schedule = GenerateSvpp(options);
  const Bytes act = 10;
  const Bytes grad = 4;
  const UniformCostModel costs(1.0, 1.0, 1.0, 0.02, act, grad, 4);
  for (Bytes budget : {Bytes{30}, Bytes{60}, Bytes{120}}) {
    EngineOptions engine;
    engine.wgrad_mode = WgradMode::kFillGemms;
    engine.activation_budget.assign(4, budget);
    const SimResult result = Simulate(schedule, costs, engine);
    EXPECT_LE(result.peak_activation, budget + act + grad) << "budget " << budget;
  }
}

TEST(EngineProperties, TighterBudgetNeverFaster) {
  core::SvppOptions options;
  options.stages = 4;
  options.slices = 2;
  options.micros = 8;
  const auto schedule = GenerateSvpp(options);
  const UniformCostModel costs(1.0, 1.0, 1.0, 0.02, 10, 4, 4);
  Seconds previous = 1e300;
  for (Bytes budget : {Bytes{28}, Bytes{56}, Bytes{112}, Bytes{1000}}) {
    EngineOptions engine;
    engine.activation_budget.assign(4, budget);
    const Seconds makespan = Simulate(schedule, costs, engine).makespan;
    EXPECT_LE(makespan, previous + 1e-9) << "budget " << budget;
    previous = makespan;
  }
}

TEST(EngineProperties, NoisyRunsPreserveInvariants) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const Shape shape = RandomShape(rng);
    const auto schedule = MakeSvpp(shape);
    const UniformCostModel base(1.0, 1.0, 1.0, 0.05, 8, 3, 6);
    const NoisyCostModel noisy(base, 0.05, static_cast<std::uint64_t>(trial));
    const SimResult result = Simulate(schedule, noisy);
    CheckInvariants(schedule, result, noisy, /*expect_wgrad_items=*/true);
  }
}

}  // namespace
}  // namespace mepipe::sim
