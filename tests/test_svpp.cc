// Tests for SVPP schedule generation (core/svpp) — the paper's §4.
#include "core/svpp.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/check.h"
#include "sched/serialize.h"
#include "sched/validate.h"
#include "sim/cost_model.h"
#include "sim/engine.h"

namespace mepipe::core {
namespace {

using sched::OpKind;
using sched::Schedule;

SvppOptions Options(int p, int v, int s, int n, int f = 0, bool split = true) {
  SvppOptions options;
  options.stages = p;
  options.virtual_chunks = v;
  options.slices = s;
  options.micros = n;
  options.max_inflight = f;
  options.split_backward = split;
  return options;
}

TEST(Svpp, InflightBounds) {
  const SvppOptions options = Options(4, 2, 2, 4);
  EXPECT_EQ(MinInflight(options), 4);     // v*s
  EXPECT_EQ(Table3Inflight(options), 9);  // v*max(p,s) + min(p,s) - 1
  EXPECT_GT(MaxUsefulInflight(options), Table3Inflight(options));
}

TEST(Svpp, Table3InflightSliceHeavy) {
  // s > p: v*s + p - 1.
  const SvppOptions options = Options(4, 1, 8, 4);
  EXPECT_EQ(Table3Inflight(options), 11);
}

TEST(Svpp, RejectsVariantBelowFloor) {
  EXPECT_THROW(GenerateSvpp(Options(4, 2, 2, 4, /*f=*/3)), CheckError);
}

TEST(Svpp, PaperFigure4aShape) {
  // p=4, s=2, v=1, 4 micros (Figure 4a). Stage 0 of the Table 3 variant
  // admits p + s - 1 = 5 forwards before the first backward, matching the
  // 5/8·A peak the paper derives (5 slice-forwards, each A/(s·p) = A/8).
  const Schedule schedule = GenerateSvpp(Options(4, 1, 2, 4, /*f=*/5, /*split=*/false));
  EXPECT_EQ(sched::PeakRetainedForwards(schedule, 0), 5);
}

TEST(Svpp, PaperFigure4bShape) {
  // p=4, s=2, v=2 (Figure 4b): peak is 9 chunk-forwards of A/16 each.
  const Schedule schedule = GenerateSvpp(Options(4, 2, 2, 4, /*f=*/9, /*split=*/false));
  EXPECT_EQ(sched::PeakRetainedForwards(schedule, 0), 9);
}

TEST(Svpp, MemoryVariantsTradeBubbleForMemory) {
  // Sweeping f from the floor to the max: retained forwards weakly
  // increase, simulated makespan weakly decreases.
  const sim::UniformCostModel costs(1.0, 1.0, 1.0, 0.02);
  int previous_peak = 0;
  double previous_makespan = 1e100;
  for (int f = 2; f <= 5; ++f) {
    const Schedule schedule = GenerateSvpp(Options(4, 1, 2, 6, f));
    const sim::SimResult result = Simulate(schedule, costs);
    const int peak = sched::PeakRetainedForwards(schedule, 0);
    EXPECT_GE(peak, previous_peak) << "f=" << f;
    EXPECT_LE(result.makespan, previous_makespan + 1e-9) << "f=" << f;
    previous_peak = peak;
    previous_makespan = result.makespan;
  }
}

TEST(Svpp, SliceCountReducesPeakRetainedFraction) {
  // Figure 1's headline (p=8, v=2, n=8): slicing samples cuts peak
  // activation memory by >70% (s=4) and >80% (s=8) versus DAPPLE's
  // retained-p-micro-batches peak of 1.0·A.
  const int p = 8;
  const int v = 2;
  const int n = 8;
  for (int s : {4, 8}) {
    SvppOptions options = Options(p, v, s, n, 0, /*split=*/false);
    options.max_inflight = Table3Inflight(options);
    const Schedule schedule = GenerateSvpp(options);
    // Peak in units of A: retained chunk-slice-forwards / (v*s*p).
    const double fraction =
        static_cast<double>(sched::PeakRetainedForwards(schedule, 0)) / (v * s * p);
    const double dapple_fraction = 1.0;  // p micro-forwards of A/p each
    EXPECT_LT(fraction, (s == 4 ? 0.30 : 0.20) * dapple_fraction) << "s=" << s;
  }
}

TEST(Svpp, SplitBackwardDefersW) {
  const Schedule schedule = GenerateSvpp(Options(4, 1, 2, 4));
  EXPECT_TRUE(schedule.deferred_wgrad);
  EXPECT_TRUE(schedule.problem.split_backward);
}

TEST(Svpp, ReschedulingDoesNotHurtMakespan) {
  const sim::UniformCostModel costs(1.0, 1.0, 1.0, 0.02);
  SvppOptions with = Options(4, 2, 2, 8);
  SvppOptions without = with;
  without.reschedule_backwards = false;
  const Seconds opt = Simulate(GenerateSvpp(with), costs).makespan;
  const Seconds base = Simulate(GenerateSvpp(without), costs).makespan;
  EXPECT_LE(opt, base * 1.05);
}

TEST(Svpp, Table3VariantReachesItsBound) {
  // The Table 3 variant (f = v·max(p,s)+min(p,s)−1) actually *uses* its
  // budget on stage 0 when enough micro-batches exist — the generation
  // is not accidentally conservative.
  for (const auto& [p, v, s] : std::vector<std::tuple<int, int, int>>{
           {4, 1, 2}, {8, 1, 4}, {4, 2, 2}}) {
    SvppOptions options = Options(p, v, s, /*n=*/16, 0, /*split=*/false);
    options.max_inflight = Table3Inflight(options);
    const Schedule schedule = GenerateSvpp(options);
    EXPECT_EQ(sched::PeakRetainedForwards(schedule, 0), options.max_inflight)
        << "p=" << p << " v=" << v << " s=" << s;
  }
}

TEST(Svpp, MoreMicrosNeverRaisesPeak) {
  for (int n : {2, 4, 8, 16}) {
    SvppOptions options = Options(8, 1, 4, n, 0, /*split=*/false);
    options.max_inflight = Table3Inflight(options);
    const Schedule schedule = GenerateSvpp(options);
    EXPECT_LE(sched::PeakRetainedForwards(schedule, 0), options.max_inflight) << n;
  }
}

// Property sweep across shapes: generated SVPP schedules validate and the
// retained-forward peak never exceeds the requested variant.
struct SvppCase {
  int p, v, s, n;
};

class SvppSweep : public ::testing::TestWithParam<SvppCase> {};

TEST_P(SvppSweep, AllVariantsValid) {
  const SvppCase c = GetParam();
  SvppOptions options = Options(c.p, c.v, c.s, c.n);
  const int floor = MinInflight(options);
  const int ceiling = MaxUsefulInflight(options);
  for (int f = floor; f <= ceiling; ++f) {
    options.max_inflight = f;
    const Schedule schedule = GenerateSvpp(options);
    sched::InvariantOptions invariants;
    invariants.costs.transfer_time = 0.02;
    for (int stage = 0; stage < c.p; ++stage) {
      EXPECT_LE(sched::PeakRetainedForwards(schedule, stage), std::max(floor, f - stage))
          << "f=" << f << " stage=" << stage;
      invariants.retained_cap.push_back(std::max(floor, f - stage));
    }
    sched::ValidateScheduleInvariants(schedule, invariants);
  }
}

// Golden snapshots: the generation is deterministic, so the serialized
// form of two canonical configs is pinned byte-for-byte (see
// tests/golden/README.md for the regeneration contract).
std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MEPIPE_CHECK(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(SvppGolden, SnapshotsAreByteStable) {
  struct GoldenCase {
    SvppOptions options;
    const char* file;
  };
  const GoldenCase cases[] = {
      {Options(4, 1, 2, 6, /*f=*/5), "svpp_p4_v1_s2_n6_f5.txt"},
      {Options(8, 2, 2, 8), "svpp_p8_v2_s2_n8.txt"},
  };
  for (const GoldenCase& c : cases) {
    SCOPED_TRACE(c.file);
    const std::string golden =
        ReadFileOrDie(std::string(MEPIPE_TESTS_DIR) + "/golden/" + c.file);
    const Schedule schedule = GenerateSvpp(c.options);
    EXPECT_EQ(sched::SerializeSchedule(schedule), golden);
    const Schedule parsed = sched::ParseSchedule(golden);
    EXPECT_EQ(sched::SerializeSchedule(parsed), golden);
    EXPECT_EQ(parsed.stage_ops, schedule.stage_ops);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvppSweep,
    ::testing::Values(SvppCase{2, 1, 2, 3}, SvppCase{4, 1, 2, 4}, SvppCase{4, 1, 4, 6},
                      SvppCase{4, 2, 2, 4}, SvppCase{8, 1, 4, 4}, SvppCase{8, 2, 2, 8},
                      SvppCase{3, 2, 3, 5}, SvppCase{6, 1, 8, 3}),
    [](const auto& info) {
      const SvppCase& c = info.param;
      return "p" + std::to_string(c.p) + "v" + std::to_string(c.v) + "s" + std::to_string(c.s) +
             "n" + std::to_string(c.n);
    });

}  // namespace
}  // namespace mepipe::core
