// The §6 implementation loop, end to end: generate an MEPipe schedule,
// export it (the artifact a Megatron-style execution engine would
// consume), execute it, profile the run, and re-plan against the
// profiled costs — plus a noisy many-iterations measurement in the
// paper's §7.1 protocol.
//
//   $ ./profile_and_export [schedule.txt]
#include <cstdio>

#include "mepipe.h"

int main(int argc, char** argv) {
  using namespace mepipe;

  // 1. Schedule generation (the paper's SVPP scheduler).
  core::SvppOptions options;
  options.stages = 4;
  options.slices = 4;
  options.micros = 8;
  const sched::Schedule schedule = GenerateSvpp(options);
  std::printf("generated %s\n", schedule.method.c_str());

  // 2. Export for an external executor; round-trip to prove fidelity.
  const std::string path = argc > 1 ? argv[1] : "mepipe_schedule.txt";
  WriteScheduleFile(schedule, path);
  const sched::Schedule loaded = sched::ReadScheduleFile(path);
  std::printf("schedule exported to %s and re-validated (%zu ops on stage 0)\n", path.c_str(),
              loaded.stage_ops[0].size());

  // 3. Execute and profile (the paper's profiler component).
  const sim::UniformCostModel analytic(Milliseconds(2), Milliseconds(2), Milliseconds(2),
                                       Microseconds(200), 4, 2, 8);
  sim::EngineOptions engine;
  engine.wgrad_mode = sim::WgradMode::kFillGemms;
  const sim::SimResult first = Simulate(loaded, analytic, engine);
  const core::Profile profile = core::Profile::FromResult(first);
  std::printf("\nfirst run: makespan %s, bubble %.1f%%\n",
              FormatSeconds(first.makespan).c_str(), 100.0 * first.bubble_ratio);
  std::printf("%s", profile.Report().c_str());

  // 4. Re-simulate with measured costs (profiler → scheduler loop).
  const core::ProfiledCostModel replay(profile, analytic);
  const sim::SimResult second = Simulate(loaded, replay, engine);
  std::printf("replayed with profiled costs: makespan %s (Δ %.3f ms)\n",
              FormatSeconds(second.makespan).c_str(),
              ToMilliseconds(second.makespan - first.makespan));

  // 5. The §7.1 measurement protocol: run "iterations" with jitter and
  // average the last 10.
  const int iterations = 30;
  double tail_sum = 0;
  int tail_count = 0;
  for (int i = 0; i < iterations; ++i) {
    const sim::NoisyCostModel noisy(analytic, /*sigma=*/0.03,
                                    static_cast<std::uint64_t>(i + 1));
    const Seconds t = Simulate(loaded, noisy, engine).makespan;
    if (i >= iterations - 10) {
      tail_sum += t;
      ++tail_count;
    }
  }
  std::printf("\n%d noisy iterations; average of the last %d: %s\n", iterations, tail_count,
              FormatSeconds(tail_sum / tail_count).c_str());
  return 0;
}
