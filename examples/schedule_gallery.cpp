// Schedule gallery: renders the pipeline diagrams of the paper's
// Figures 2-6 as ASCII timelines — every baseline plus the SVPP memory
// variants — so the scheduling differences are visible at a glance.
//
//   $ ./schedule_gallery
#include <cstdio>

#include "core/svpp.h"
#include "sched/baselines.h"
#include "sim/cost_model.h"
#include "sim/engine.h"
#include "trace/ascii.h"

namespace {

using namespace mepipe;

void Show(const char* caption, const sched::Schedule& schedule, double b_time = 2.0) {
  const sim::UniformCostModel costs(1.0, b_time, 1.0, 0.02);
  sim::EngineOptions engine;
  engine.wgrad_mode = sim::WgradMode::kFillGemms;
  const sim::SimResult result = Simulate(schedule, costs, engine);
  std::printf("\n--- %s (%s) ---\n", caption, schedule.method.c_str());
  std::printf("%s", trace::RenderTimeline(result, schedule.problem.stages, 100).c_str());
  std::printf("bubble %.1f%%  peak retained %lld units\n", 100.0 * result.bubble_ratio,
              static_cast<long long>(result.peak_activation));
}

}  // namespace

int main() {
  const int p = 4;
  const int n = 4;

  std::printf("Pipeline schedule gallery: p=%d stages, n=%d micro-batches.\n", p, n);
  std::printf("Digits are forward passes (micro id), letters backward, '.' weight-grad.\n");

  // Figure 2 — 1F1B (DAPPLE).
  Show("Figure 2: 1F1B / DAPPLE", sched::OneFOneBSchedule(p, n));

  // GPipe, for contrast (§2.1).
  Show("GPipe (all-F-then-all-B)", sched::GPipeSchedule(p, n));

  // Figure 3 — TeraPipe: slice-level GPipe ordering.
  Show("Figure 3: TeraPipe, s=2", sched::TeraPipeSchedule(p, 2, n));

  // Megatron interleaved VPP.
  Show("Megatron VPP, v=2", sched::VppSchedule(p, 2, n));

  // Figure 4(a) — SVPP, v=1, s=2.
  {
    core::SvppOptions options;
    options.stages = p;
    options.slices = 2;
    options.micros = n;
    options.split_backward = false;
    options.max_inflight = core::Table3Inflight(options);
    Show("Figure 4(a): SVPP v=1 s=2", GenerateSvpp(options));
  }

  // Figure 4(b) — SVPP, v=2, s=2.
  {
    core::SvppOptions options;
    options.stages = p;
    options.virtual_chunks = 2;
    options.slices = 2;
    options.micros = n;
    options.split_backward = false;
    options.max_inflight = core::Table3Inflight(options);
    Show("Figure 4(b): SVPP v=2 s=2", GenerateSvpp(options));
  }

  // Figure 5 — the memory variants: f from the floor up.
  {
    core::SvppOptions options;
    options.stages = p;
    options.virtual_chunks = 2;
    options.slices = 2;
    options.micros = 2;
    options.split_backward = false;
    const int floor = core::MinInflight(options);
    for (int f : {floor, floor + 2, core::Table3Inflight(options)}) {
      options.max_inflight = f;
      Show(f == floor ? "Figure 5(c): minimal-memory variant"
                      : (f == core::Table3Inflight(options)
                             ? "Figure 5(a): lowest-bubble variant"
                             : "Figure 5(b): intermediate variant"),
           GenerateSvpp(options));
    }
  }

  // Zero-bubble baselines with deferred W (engine fills the tail).
  Show("ZB-1P (split B/W, deferred W)", sched::Zb1pSchedule(p, n), 1.0);
  Show("ZBV (V-shape chunks)", sched::ZbvSchedule(p, n), 1.0);

  // MEPipe proper: SVPP + fine-grained W.
  {
    core::SvppOptions options;
    options.stages = p;
    options.slices = 2;
    options.micros = n;
    options.split_backward = true;
    Show("MEPipe: SVPP + fine-grained weight gradients", GenerateSvpp(options), 1.0);
  }
  return 0;
}
