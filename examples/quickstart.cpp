// Quickstart: generate an SVPP schedule, execute it on the simulator,
// and inspect the result — the smallest end-to-end tour of the library.
//
//   $ ./quickstart
//
// Walks through the three core objects:
//   1. core::SvppOptions / GenerateSvpp — the paper's scheduling method
//   2. sim::CostModel + Simulate        — the discrete-event engine
//   3. trace::RenderTimeline            — the pipeline-diagram view
#include <cstdio>

#include "core/analytic.h"
#include "core/svpp.h"
#include "sched/baselines.h"
#include "sim/cost_model.h"
#include "sim/engine.h"
#include "trace/ascii.h"

int main() {
  using namespace mepipe;

  // A small pipeline: 4 stages, each sample cut into 2 slices, 6
  // micro-batches — the shape of the paper's Figure 4(a).
  core::SvppOptions options;
  options.stages = 4;
  options.slices = 2;
  options.micros = 6;
  options.split_backward = true;  // MEPipe splits B and W (§5)
  // The Table 3 variant: p + s - 1 = 5 forwards admitted before the
  // first backward (the lowest-bubble memory point of §4.2).
  options.max_inflight = core::Table3Inflight(options);

  const sched::Schedule schedule = GenerateSvpp(options);
  std::printf("generated %s: %zu ops on stage 0\n", schedule.method.c_str(),
              schedule.stage_ops[0].size());

  // Uniform costs: F = B = W = 1 ms per slice, 50 us transfers. Real
  // models plug in core::TrainingCostModel instead.
  const sim::UniformCostModel costs(Milliseconds(1), Milliseconds(1), Milliseconds(1),
                                    Microseconds(50), /*act_bytes=*/1);
  sim::EngineOptions engine;
  engine.wgrad_mode = sim::WgradMode::kFillGemms;
  // Budget the engine to the variant's footprint (+1 for act-grads in
  // flight); deferred W work drains under memory pressure (§5, Fig. 7b).
  engine.activation_budget.assign(4, options.max_inflight + 1);
  const sim::SimResult result = Simulate(schedule, costs, engine);

  // Each retained unit is one slice-chunk forward = A/(s·p) of a sample's
  // activations.
  const double fraction = static_cast<double>(result.peak_activation) /
                          (options.slices * options.stages);
  std::printf("makespan      : %s\n", FormatSeconds(result.makespan).c_str());
  std::printf("bubble ratio  : %.1f%%\n", 100.0 * result.bubble_ratio);
  std::printf("peak retained : %lld slice-forwards = %.2f of one sample's activations A\n",
              static_cast<long long>(result.peak_activation), fraction);

  std::printf("\n%s", trace::RenderTimeline(result, options.stages, 100).c_str());

  // Compare with 1F1B on the same problem.
  const sched::Schedule dapple = sched::OneFOneBSchedule(options.stages, options.micros);
  const sim::UniformCostModel dapple_costs(Milliseconds(2), Milliseconds(4), 0.0,
                                           Microseconds(50), /*act_bytes=*/2);
  const sim::SimResult baseline = Simulate(dapple, dapple_costs);
  const double dapple_fraction = static_cast<double>(baseline.peak_activation) /
                                 (options.slices * options.stages);
  std::printf("\n1F1B on the same problem: bubble %.1f%%, peak %.2f·A — slice-level\n"
              "interleaving cuts the retained-activation peak (Table 3).\n",
              100.0 * baseline.bubble_ratio, dapple_fraction);

  // The closed forms of Table 3 are available without simulating:
  if (const auto analytic = core::Analyze(core::Method::kSvpp, {4, 1, 2, 6})) {
    std::printf("Table 3 says: bubble %.1f%%, activation fraction %.3f of A\n",
                100.0 * analytic->bubble_ratio, analytic->activation_fraction);
  }
  return 0;
}
