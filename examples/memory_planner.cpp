// Memory-planner scenario (§4.5): for a model and a parallel layout,
// walk the SVPP variant space — how many forward passes can be admitted
// before the first backward within the device's memory — and show the
// memory/bubble trade-off of Figure 5, plus the automatic variant the
// library would pick.
//
//   $ ./memory_planner [7B|13B|34B] [pp] [spp]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/format.h"
#include "core/iteration.h"
#include "core/memory_model.h"
#include "core/svpp.h"
#include "hw/cluster.h"
#include "model/transformer.h"

int main(int argc, char** argv) {
  using namespace mepipe;

  const std::string size = argc > 1 ? argv[1] : "13B";
  const int pp = argc > 2 ? std::atoi(argv[2]) : 8;
  const int spp = argc > 3 ? std::atoi(argv[3]) : 4;

  const auto config = model::LlamaBySize(size);
  const auto cluster = hw::Rtx4090Cluster();
  const int dp = cluster.world_size() / pp;

  core::Strategy strategy;
  strategy.method = core::Method::kSvpp;
  strategy.pp = pp;
  strategy.dp = dp;
  strategy.spp = spp;

  sched::PipelineProblem problem;
  problem.stages = pp;
  problem.slices = spp;
  problem.micros = 128 / dp;
  problem.split_backward = true;

  const core::TrainingCostModel costs(config, strategy, cluster, problem);
  core::SvppOptions svpp;
  svpp.stages = pp;
  svpp.slices = spp;
  svpp.micros = problem.micros;

  std::printf("Memory plan for %s, pp=%d, dp=%d, spp=%d on %s (%s usable)\n\n",
              config.name.c_str(), pp, dp, spp, cluster.gpu.name.c_str(),
              FormatBytes(cluster.gpu.usable_memory()).c_str());
  std::printf("static memory (worst stage) : %s\n",
              FormatBytes(costs.MaxStaticMemory()).c_str());
  std::printf("per-forward activation unit : %s\n",
              FormatBytes(costs.PerForwardActivationBytes()).c_str());

  const core::VariantDecision decision = ChooseSvppVariant(costs, svpp, cluster.gpu);
  if (!decision.feasible) {
    std::printf("\nNo feasible SVPP variant: %s\n", decision.reason.c_str());
    return 1;
  }
  std::printf("activation budget           : %s\n",
              FormatBytes(decision.activation_budget).c_str());
  std::printf("chosen variant f            : %d  (floor %d, Table 3 %d, ceiling %d)\n\n",
              decision.f, MinInflight(svpp), Table3Inflight(svpp), MaxUsefulInflight(svpp));

  // Sweep the variants: memory up, bubble down (Figure 5's trade-off).
  std::printf("%-6s %-14s %-12s %-14s\n", "f", "iteration_ms", "bubble", "peak_mem");
  core::IterationOptions options;
  options.keep_timeline = false;
  for (int f = MinInflight(svpp); f <= std::min(decision.f, MaxUsefulInflight(svpp));
       f = f + std::max(1, (decision.f - MinInflight(svpp)) / 6)) {
    options.svpp_inflight = f;
    const auto result = SimulateIteration(config, strategy, cluster, 128, options);
    if (!result.feasible) {
      std::printf("%-6d %s\n", f, result.note.c_str());
      continue;
    }
    std::printf("%-6d %-14.1f %-12s %-14s\n", f, ToMilliseconds(result.iteration_time),
                StrFormat("%.1f%%", 100.0 * result.bubble_ratio).c_str(),
                FormatBytes(result.peak_memory).c_str());
  }
  std::printf("\nSmaller f delays forwards past the first backward (Figure 5's\n"
              "variants): less memory, more bubbles. The automatic pick is the\n"
              "largest f that fits the budget.\n");
  return 0;
}
