// Numeric validation: demonstrates on a real (tiny) transformer that
// slice-level execution — the thing MEPipe schedules — computes exactly
// the same gradients as whole-sequence execution, for any slicing, with
// weight gradients optionally deferred per GEMM (§5).
//
//   $ ./numeric_validation [slices]
#include <cstdio>
#include <cstdlib>
#include <random>

#include "model/flops.h"
#include "model/slicing.h"
#include "ref/ref_model.h"

int main(int argc, char** argv) {
  using namespace mepipe;
  const int slices = argc > 1 ? std::atoi(argv[1]) : 4;

  ref::RefConfig config;
  config.hidden = 48;
  config.ffn = 96;
  config.layers = 3;
  config.heads = 4;
  config.vocab = 101;
  config.seq_len = 24;

  const ref::RefModel model(config, /*seed=*/2025);
  std::mt19937 rng(7);
  std::uniform_int_distribution<std::int64_t> dist(0, config.vocab - 1);
  std::vector<std::int64_t> tokens(static_cast<std::size_t>(config.seq_len));
  std::vector<std::int64_t> targets(static_cast<std::size_t>(config.seq_len));
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    tokens[i] = dist(rng);
    targets[i] = dist(rng);
  }

  std::printf("tiny transformer: h=%lld, layers=%lld, heads=%lld, L=%lld, s=%d\n\n",
              static_cast<long long>(config.hidden), static_cast<long long>(config.layers),
              static_cast<long long>(config.heads), static_cast<long long>(config.seq_len),
              slices);

  const auto whole = model.TrainStepWhole(tokens, targets);
  std::printf("whole-sequence execution:      loss = %.6f\n", whole.loss);

  const auto uniform_spans = model::UniformSlices(config.seq_len, slices);
  const auto sliced = model.TrainStepSliced(tokens, targets, uniform_spans, /*defer=*/false);
  std::printf("sliced (uniform, inline W):    loss = %.6f   max |Δgrad| = %.2e\n", sliced.loss,
              ref::Weights::MaxAbsDiff(sliced.grads, whole.grads));

  const auto deferred = model.TrainStepSliced(tokens, targets, uniform_spans, /*defer=*/true);
  std::printf("sliced (uniform, deferred W):  loss = %.6f   max |Δgrad| = %.2e\n",
              deferred.loss, ref::Weights::MaxAbsDiff(deferred.grads, whole.grads));

  // TeraPipe-style balanced (non-uniform) slicing also matches: slicing
  // geometry is irrelevant to the math.
  model::TransformerConfig mcfg;
  mcfg.hidden = config.hidden;
  mcfg.ffn_hidden = config.ffn;
  mcfg.layers = config.layers;
  mcfg.heads = config.heads;
  mcfg.kv_heads = config.heads;
  mcfg.seq_len = config.seq_len;
  const auto balanced_spans = model::BalancedSlices(mcfg, config.seq_len, slices);
  const auto balanced =
      model.TrainStepSliced(tokens, targets, balanced_spans, /*defer=*/true);
  std::printf("sliced (balanced, deferred W): loss = %.6f   max |Δgrad| = %.2e\n",
              balanced.loss, ref::Weights::MaxAbsDiff(balanced.grads, whole.grads));

  std::printf(
      "\nAll variants agree to float tolerance: the dependencies MEPipe's\n"
      "scheduler encodes (F(t) after F(t-1); B(t) after B(t+1); W after B)\n"
      "are exactly what the K/V cache and dK/dV accumulators require.\n");
  return 0;
}
