// End-to-end scenario (the paper's E1): find the optimal parallel
// strategy for every system on Llama 13B over the 64× RTX 4090 cluster,
// simulate a training iteration, and report the Figure-8-style
// comparison. Optionally dumps the winning MEPipe timeline as a Chrome
// trace for inspection in Perfetto.
//
//   $ ./train_llama13b [gbs] [trace.json]
#include <cstdio>
#include <cstdlib>

#include "core/planner.h"
#include "hw/cluster.h"
#include "model/transformer.h"
#include "trace/ascii.h"
#include "trace/chrome_trace.h"

int main(int argc, char** argv) {
  using namespace mepipe;
  using core::Method;

  const int gbs = argc > 1 ? std::atoi(argv[1]) : 64;
  const char* trace_path = argc > 2 ? argv[2] : nullptr;

  const auto config = model::Llama13B();
  const auto cluster = hw::Rtx4090Cluster();
  std::printf("Training %s on %d x %s (global batch %d, seq len %lld)\n\n", config.name.c_str(),
              cluster.world_size(), cluster.gpu.name.c_str(), gbs,
              static_cast<long long>(config.seq_len));

  std::optional<core::IterationResult> mepipe;
  double best_other = 1e300;
  for (Method method : {Method::kDapple, Method::kVpp, Method::kZb1p, Method::kZbv,
                        Method::kSvpp}) {
    const auto result = core::SearchBestStrategy(method, config, cluster, gbs);
    if (!result.best) {
      std::printf("%-8s no feasible configuration (%zu tried)\n", ToString(method),
                  result.evaluated.size());
      continue;
    }
    const auto& b = *result.best;
    std::printf("%-8s %-32s iter %8.1f ms  bubble %5.1f%%  peak %6.1f GiB  MFU %5.1f%%\n",
                ToString(method), b.strategy.ToString().c_str(),
                ToMilliseconds(b.iteration_time), 100.0 * b.bubble_ratio,
                ToGiB(b.peak_memory), 100.0 * b.mfu);
    if (method == Method::kSvpp) {
      mepipe = b;
    } else {
      best_other = std::min(best_other, b.iteration_time);
    }
  }

  if (!mepipe) {
    std::printf("\nMEPipe found no feasible configuration.\n");
    return 1;
  }
  if (best_other < 1e300) {
    std::printf("\nMEPipe speedup over the best baseline: %.2fx\n",
                best_other / mepipe->iteration_time);
  }
  std::printf("tokens/s: %.0f   achieved %.1f TFLOPS/GPU\n",
              static_cast<double>(gbs) * static_cast<double>(config.seq_len) /
                  mepipe->iteration_time,
              mepipe->per_gpu_flops / 1e12);

  std::printf("\nMEPipe pipeline timeline:\n%s",
              trace::RenderTimeline(mepipe->sim, mepipe->strategy.pp, 110).c_str());

  if (trace_path != nullptr) {
    trace::WriteChromeTrace(mepipe->sim, trace_path);
    std::printf("Chrome trace written to %s (open in ui.perfetto.dev)\n", trace_path);
  }
  return 0;
}
